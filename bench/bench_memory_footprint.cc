/**
 * @file
 * Reproduces the memory argument of paper §5.1.1: codeword-triggered
 * pulse generation stores a fixed set of primitive pulses (420 bytes
 * for AllXY) while the conventional method stores one waveform per
 * combination (2520 bytes for AllXY), growing without bound as the
 * experiment gets richer.
 */

#include <cstdio>

#include "baseline/waveform_method.hh"
#include "bench/report.hh"
#include "quma/machine.hh"

using namespace quma;

int
main()
{
    bench::banner("Section 5.1.1: wave-memory footprint comparison");

    baseline::ConventionalAwgController awg;

    // The paper's AllXY numbers.
    std::size_t codeword420 = awg.bytesFor(7, 1, 20.0);
    std::size_t waveform2520 = awg.bytesFor(21, 2, 20.0);
    std::printf("AllXY, paper numbers: codeword scheme %zu bytes "
                "[420], conventional %zu bytes [2520]\n\n",
                codeword420, waveform2520);

    // Scaling with the number of operation combinations. The
    // codeword scheme's cost is the machine's actual wave memory and
    // does not depend on the combination count.
    core::MachineConfig cfg;
    core::QumaMachine machine(cfg);
    machine.uploadStandardCalibration();
    std::size_t lutBytes = 0;
    for (Codeword cw = 0; cw <= 6; ++cw) {
        const auto &p = machine.awgModule(0).waveMemory().lookup(cw);
        lutBytes +=
            (p.i.size() + p.q.size()) * kSampleResolutionBits / 8;
    }

    std::printf("%-14s %-20s %-20s %-10s\n", "combinations",
                "conventional (B)", "codeword LUT (B)", "ratio");
    bench::rule();
    for (unsigned combos : {21u, 50u, 100u, 500u, 1000u, 10000u}) {
        std::size_t conv = awg.bytesFor(combos, 2, 20.0);
        std::printf("%-14u %-20zu %-20zu %-10.1f\n", combos, conv,
                    lutBytes,
                    static_cast<double>(conv) /
                        static_cast<double>(lutBytes));
    }
    bench::rule();

    // Upload-time penalty of a "small change" (paper §4.2.2): the
    // conventional flow re-uploads everything.
    baseline::ConventionalAwgController link(1.0e9, 12, 30.0e6);
    for (int i = 0; i < 21; ++i)
        link.uploadWaveform("combo", 2, 20.0);
    auto stats = link.stats();
    std::printf("\nconventional re-upload after any change: %zu bytes, "
                "%.1f us over a 30 MB/s link;\nthe codeword scheme "
                "re-uploads only the affected primitive (%zu bytes).\n",
                stats.bytes, stats.uploadSeconds * 1e6,
                lutBytes / 7);
    return 0;
}
