/**
 * @file
 * Cost and scaling of the fleet front door: the same pipelined AllXY
 * batch is driven (a) directly against one QumaServer and (b)
 * through a QumaGateway over 1, 2, and 4 backends, all on TCP
 * loopback. The 1-backend ratio prices the extra hop -- one more
 * socket, the frame re-seal, the id rewrite -- with no routing win
 * to hide it; the 2- and 4-backend rows show what config-affinity
 * spreading buys back once the fleet can actually parallelise.
 *
 * Every configuration must return per-seed results bit-identical to
 * an in-process run of the same specs: the gateway adds transport
 * and placement, never physics.
 *
 * Tunables (environment): QUMA_BENCH_GW_JOBS (batch size, default
 * 32), QUMA_BENCH_GW_ROUNDS (averaged shots per job, default 8),
 * QUMA_BENCH_GW_WORKERS (workers PER BACKEND, default 2),
 * QUMA_BENCH_GW_MAX_BACKENDS (default 4).
 */

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bench/report.hh"
#include "experiments/allxy.hh"
#include "net/client.hh"
#include "net/gateway.hh"
#include "net/server.hh"
#include "runtime/service.hh"

using namespace quma;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Jobs with PER-JOB machine configs, so affinity can spread them. */
std::vector<runtime::JobSpec>
makeBatch(std::size_t jobs, std::size_t rounds)
{
    std::vector<runtime::JobSpec> batch;
    for (std::size_t i = 0; i < jobs; ++i) {
        experiments::AllxyConfig cfg;
        cfg.rounds = rounds;
        cfg.shards = 1;
        cfg.amplitudeError =
            0.001 * static_cast<double>(i); // distinct config per job
        cfg.seed = 0x9a7e + i;
        batch.push_back(experiments::allxyJob(cfg));
    }
    return batch;
}

/** One live backend: service + server on an ephemeral port. */
struct Backend
{
    runtime::ExperimentService service;
    std::uint16_t port = 0;
    std::unique_ptr<net::QumaServer> server;

    explicit Backend(runtime::ServiceConfig sc) : service(sc)
    {
        auto listener = std::make_unique<net::TcpListener>(0);
        port = listener->port();
        server = std::make_unique<net::QumaServer>(service,
                                                   std::move(listener));
    }
};

/** Pipeline the batch through `port`; jobs/sec + per-seed results. */
std::pair<double, std::map<std::uint64_t, runtime::JobResult>>
runBatch(const std::vector<runtime::JobSpec> &batch, std::uint16_t port)
{
    net::QumaClient client("127.0.0.1", port);
    auto start = std::chrono::steady_clock::now();
    std::vector<runtime::JobId> ids = client.submitAll(batch);
    std::map<runtime::JobId, std::uint64_t> seedOf;
    for (std::size_t i = 0; i < ids.size(); ++i)
        seedOf.emplace(ids[i], batch[i].seed);
    std::map<std::uint64_t, runtime::JobResult> got;
    for (auto &[id, result] : client.awaitMany(ids))
        got.emplace(seedOf.at(id), std::move(result));
    double rate =
        static_cast<double>(batch.size()) / secondsSince(start);
    return {rate, std::move(got)};
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t jobs = bench::envSize("QUMA_BENCH_GW_JOBS", 32);
    std::size_t rounds = bench::envSize("QUMA_BENCH_GW_ROUNDS", 8);
    std::size_t workers = bench::envSize("QUMA_BENCH_GW_WORKERS", 2);
    std::size_t maxBackends =
        bench::envSize("QUMA_BENCH_GW_MAX_BACKENDS", 4);
    std::string jsonPath = bench::argValue(argc, argv, "--json");
    bench::JsonReport json("gateway");
    json.metric("jobs", static_cast<double>(jobs));
    json.metric("rounds", static_cast<double>(rounds));
    json.metric("workers_per_backend", static_cast<double>(workers));

    bench::banner("fleet gateway: hop overhead and backend scaling");
    std::printf("batch: %zu AllXY jobs x %zu rounds, %zu workers per "
                "backend, TCP loopback\n",
                jobs, rounds, workers);

    runtime::ServiceConfig sc;
    sc.workers = static_cast<unsigned>(workers);
    sc.queueCapacity = jobs + 2;

    std::vector<runtime::JobSpec> batch = makeBatch(jobs, rounds);

    // In-process reference: everything below must reproduce it.
    std::map<std::uint64_t, runtime::JobResult> reference;
    {
        runtime::ExperimentService local(sc);
        std::vector<runtime::JobId> ids = local.submitAll(batch);
        std::vector<runtime::JobResult> results = local.awaitAll(ids);
        for (std::size_t i = 0; i < batch.size(); ++i)
            reference.emplace(batch[i].seed, std::move(results[i]));
    }

    std::printf("%-22s %-12s %-10s\n", "path", "jobs/sec",
                "vs direct");
    bench::rule();

    // Direct: one backend, no gateway in the path.
    double directRate;
    {
        Backend be(sc);
        auto [rate, got] = runBatch(batch, be.port);
        directRate = rate;
        if (got != reference) {
            std::printf("DIRECT DETERMINISM VIOLATION\n");
            return 1;
        }
    }
    std::printf("%-22s %-12.1f %-10s\n", "direct (no gateway)",
                directRate, "1.00x");
    json.metric("gateway_direct_jobs_per_sec", directRate, "jobs/s");

    double oneBackendRate = directRate;
    for (std::size_t n = 1; n <= maxBackends; n *= 2) {
        std::vector<std::unique_ptr<Backend>> fleet;
        std::vector<net::GatewayBackend> backends;
        for (std::size_t i = 0; i < n; ++i) {
            fleet.push_back(std::make_unique<Backend>(sc));
            net::GatewayBackend b =
                net::tcpBackend("127.0.0.1", fleet[i]->port);
            b.name = "be-" + std::to_string(i);
            backends.push_back(std::move(b));
        }
        auto listener = std::make_unique<net::TcpListener>(0);
        std::uint16_t gwPort = listener->port();
        net::QumaGateway gateway(std::move(backends),
                                 std::move(listener));

        auto [rate, got] = runBatch(batch, gwPort);
        if (got != reference) {
            std::printf("GATEWAY DETERMINISM VIOLATION at %zu "
                        "backends\n",
                        n);
            return 1;
        }
        char label[32];
        std::snprintf(label, sizeof label, "gateway, %zu backend%s",
                      n, n == 1 ? "" : "s");
        std::printf("%-22s %-12.1f %.2fx\n", label, rate,
                    rate / directRate);
        json.metric("gateway_jobs_per_sec_" + std::to_string(n) + "b",
                    rate, "jobs/s");
        if (n == 1)
            oneBackendRate = rate;
        gateway.stop();
    }
    bench::rule();

    // The hop cost: direct over gateway-with-one-backend. >1 means
    // the hop costs throughput; routing wins must buy it back.
    double hopOverhead = directRate / oneBackendRate;
    std::printf("gateway hop overhead at 1 backend: %.3fx "
                "(direct %.1f vs routed %.1f jobs/sec)\n",
                hopOverhead, directRate, oneBackendRate);
    std::printf(
        "every path returned the bit-identical per-seed results the\n"
        "in-process service computes: the gateway adds placement and\n"
        "a hop, not physics.\n");
    json.metric("gateway_hop_overhead_1b", hopOverhead);

    json.writeTo(jsonPath);
    return 0;
}
