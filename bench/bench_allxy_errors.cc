/**
 * @file
 * Reproduces the error-signature argument of paper §4.1: "Different
 * pulse errors (amplitude, frequency, etc.) produce distinct
 * signatures that are easily recognized." Runs AllXY with injected
 * amplitude miscalibration, drive detuning and the 5 ns inter-pulse
 * timing skew, and prints the deviation and per-region signature of
 * each.
 */

#include <cstdio>

#include "bench/report.hh"
#include "experiments/allxy.hh"

using namespace quma;
using namespace quma::experiments;

namespace {

struct Region
{
    double low;    // mean over points 0..9   (ideal 0)
    double middle; // mean over points 10..33 (ideal 1/2)
    double high;   // mean over points 34..41 (ideal 1)
};

Region
summarize(const AllxyResult &r)
{
    Region reg{0, 0, 0};
    for (int i = 0; i < 10; ++i)
        reg.low += r.fidelity[i] / 10.0;
    for (int i = 10; i < 34; ++i)
        reg.middle += r.fidelity[i] / 24.0;
    for (int i = 34; i < 42; ++i)
        reg.high += r.fidelity[i] / 8.0;
    return reg;
}

void
report(const char *name, const AllxyResult &r)
{
    Region reg = summarize(r);
    std::printf("%-24s %-10.4f %-8.3f %-8.3f %-8.3f\n", name,
                r.deviation, reg.low, reg.middle, reg.high);
}

} // namespace

int
main()
{
    std::size_t rounds = bench::envSize("QUMA_ALLXY_ROUNDS", 512);
    bench::banner("AllXY error signatures (Section 4.1), N = " +
                  std::to_string(rounds));

    std::printf("%-24s %-10s %-8s %-8s %-8s\n", "configuration",
                "deviation", "lo(0)", "mid(.5)", "hi(1)");
    bench::rule();

    AllxyConfig base;
    base.rounds = rounds;
    report("calibrated", runAllxy(base));

    AllxyConfig amp = base;
    amp.amplitudeError = 0.10;
    report("amplitude +10%", runAllxy(amp));

    AllxyConfig ampNeg = base;
    ampNeg.amplitudeError = -0.10;
    report("amplitude -10%", runAllxy(ampNeg));

    AllxyConfig det = base;
    det.detuningHz = 2.0e6;
    report("detuning +2 MHz", runAllxy(det));

    AllxyConfig skew = base;
    skew.interPulseSkewCycles = 1;
    report("5 ns inter-pulse skew", runAllxy(skew));

    bench::rule();
    std::printf(
        "signatures: amplitude errors tilt the middle step away from "
        "1/2 with the\npi-pulse points diverging from the pi/2 "
        "points; detuning bends the pi/2\npairs; the 5 ns skew "
        "(paper 4.2.3: x becomes y under the 50 MHz SSB)\nscrambles "
        "every two-pulse combination while leaving single-pulse "
        "points\n(xI, XI) intact.\n");
    return 0;
}
