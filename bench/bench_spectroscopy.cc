/**
 * @file
 * Qubit spectroscopy plus a host-session configuration-traffic
 * summary: the tune-up step that precedes everything in paper §8,
 * with the host-link accounting that quantifies the §4.2.2
 * configuration-time argument.
 */

#include <cstdio>

#include "bench/report.hh"
#include "experiments/spectroscopy.hh"
#include "isa/assembler.hh"
#include "quma/hostlink.hh"

using namespace quma;
using namespace quma::experiments;

int
main()
{
    std::size_t rounds = bench::envSize("QUMA_SPEC_ROUNDS", 128);
    bench::banner("qubit spectroscopy (tune-up step 1), N = " +
                  std::to_string(rounds) + " per point");

    auto cfg = SpectroscopyConfig::withLinearSweep(160.0e6, 21);
    cfg.rounds = rounds;
    auto r = runSpectroscopy(cfg);

    std::printf("%-16s %-10s %s\n", "detuning (MHz)", "P(|1>)",
                "plot");
    bench::rule(64);
    for (std::size_t i = 0; i < r.detuningsHz.size(); ++i) {
        int stars = static_cast<int>(r.population[i] * 40.0 + 0.5);
        stars = std::max(0, std::min(stars, 44));
        std::printf("%-16.1f %-10.3f |%.*s\n",
                    r.detuningsHz[i] * 1e-6, r.population[i], stars,
                    "********************************************");
    }
    bench::rule(64);
    std::printf("peak at %+.1f MHz (true transition at 0), response "
                "width %.1f MHz\n(set by the 20 ns probe pulse "
                "bandwidth)\n\n",
                r.peakHz * 1e-6, r.fwhmHz * 1e-6);

    bench::banner("host-link traffic for one configured experiment");
    core::MachineConfig mc;
    core::QumaMachine machine(mc);
    core::HostLink link(machine, 30.0e6);
    link.uploadCalibration();
    isa::Assembler as;
    link.uploadProgram(as.assemble(R"(
        mov r15, 40000
        QNopReg r15
        Pulse {q0}, X180
        Wait 4
        MPG {q0}, 300
        MD {q0}, r7
        Wait 600
        halt
    )"));
    machine.configureDataCollection(1);
    machine.run();
    link.retrieveAverages();

    std::printf("%-22s %-10s %s\n", "transfer", "bytes", "direction");
    bench::rule(48);
    for (const auto &t : link.transfers())
        std::printf("%-22s %-10zu %s\n", t.what.c_str(), t.bytes,
                    t.toDevice ? "to device" : "to host");
    bench::rule(48);
    auto stats = link.stats();
    std::printf("uplink: %zu bytes in %.1f us; the conventional "
                "waveform flow ships\nentire experiment waveforms on "
                "every change instead (see\nbench_memory_footprint).\n",
                stats.bytesUp, stats.secondsUp * 1e6);
    return 0;
}
