/**
 * @file
 * Reproduces the randomized benchmarking experiment of paper §8
 * (reference [60]): random Clifford sequences with recovery, the
 * exponential survival decay, and the extracted average error per
 * Clifford / per primitive gate.
 *
 * Environment: QUMA_RB_ROUNDS overrides rounds per sequence
 * (default 128).
 */

#include <cstdio>

#include "bench/report.hh"
#include "experiments/rb.hh"

using namespace quma;
using namespace quma::experiments;

int
main()
{
    std::size_t rounds = bench::envSize("QUMA_RB_ROUNDS", 128);
    bench::banner("Section 8: randomized benchmarking (N = " +
                  std::to_string(rounds) + " per sequence)");

    RbConfig cfg;
    cfg.lengths = {2, 4, 8, 16, 32, 64, 96};
    cfg.seedsPerLength = 4;
    cfg.rounds = rounds;
    // Deliberately short coherence so the decay is visible at
    // laptop-scale sequence lengths.
    cfg.qubitParams.t1Ns = 6000.0;
    cfg.qubitParams.t2Ns = 5000.0;
    auto r = runRb(cfg);

    std::printf("%-10s %-12s %s\n", "m", "survival", "plot");
    bench::rule(60);
    for (std::size_t i = 0; i < r.lengths.size(); ++i) {
        int stars = static_cast<int>(r.survival[i] * 40.0 + 0.5);
        stars = std::max(0, std::min(stars, 44));
        std::printf("%-10u %-12.4f |%.*s\n", r.lengths[i],
                    r.survival[i], stars,
                    "********************************************");
    }
    bench::rule(60);
    std::printf("fit: survival = %.3f * p^m + %.3f with p = %.5f\n",
                r.fit.amplitude, r.fit.offset, r.p);
    std::printf("average error per Clifford: %.5f\n",
                r.errorPerClifford);
    std::printf("average error per primitive gate: %.5f "
                "(%.3f primitives per Clifford)\n",
                r.errorPerGate,
                CliffordGroup::instance().averageGateCount());
    std::printf("timing violations: %zu late, %zu stale (must be 0)\n",
                r.run.violations.latePoints,
                r.run.violations.staleEvents);
    return 0;
}
