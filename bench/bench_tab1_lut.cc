/**
 * @file
 * Reproduces paper Table 1: the lookup-table content of a
 * codeword-triggered pulse generation unit for single-qubit gates,
 * plus the memory accounting of §5.1.1.
 */

#include <cstdio>

#include "bench/report.hh"
#include "quma/machine.hh"

using namespace quma;

int
main()
{
    bench::banner("Table 1: CTPG lookup-table content");

    core::MachineConfig cfg;
    core::QumaMachine machine(cfg);
    machine.uploadStandardCalibration();
    const auto &wm = machine.awgModule(0).waveMemory();

    std::printf("%-10s %-8s %-10s %-10s %-12s\n", "Codeword", "Pulse",
                "Samples", "Peak |I/Q|", "Bytes(12b)");
    bench::rule();
    for (Codeword cw : wm.codewords()) {
        const auto &p = wm.lookup(cw);
        double peak = 0;
        for (double v : p.i)
            peak = std::max(peak, std::abs(v));
        for (double v : p.q)
            peak = std::max(peak, std::abs(v));
        std::size_t bytes =
            (p.i.size() + p.q.size()) * kSampleResolutionBits / 8;
        std::printf("%-10u %-8s %-10zu %-10.3f %-12zu\n", cw,
                    p.name.c_str(), p.i.size(), peak, bytes);
    }
    bench::rule();
    std::printf("total wave memory: %zu bytes (paper Table 1 holds "
                "codewords 0-6;\ngate pulses alone: 420 bytes for the "
                "AllXY experiment, Section 5.1.1)\n",
                wm.memoryBytes());

    std::size_t gate_bytes = 0;
    for (Codeword cw = 0; cw <= 6; ++cw) {
        const auto &p = wm.lookup(cw);
        gate_bytes +=
            (p.i.size() + p.q.size()) * kSampleResolutionBits / 8;
    }
    std::printf("gate-pulse memory (codewords 0-6): %zu bytes "
                "[paper: 420]\n",
                gate_bytes);
    return 0;
}
