/**
 * @file
 * Micro-benchmarks of the qsim hot-path kernels introduced by the
 * zero-allocation overhaul: fused density-matrix conjugations, the
 * closed-form idle (T1/T2) channel against the generic Kraus path it
 * replaced, the diagonal-gate fast paths against full conjugations,
 * and the phasor-recurrence signal chain against direct per-sample
 * sin/cos evaluation. Prints a fixed-width table and, with
 * `--json <path>`, writes the machine-readable BENCH_qsim.json used to
 * track the kernel perf trajectory across PRs.
 *
 * `--smoke` runs every kernel exactly once (no timing claims): the
 * perf_smoke ctest label uses it to catch bit-rot in Debug builds.
 */

#include <chrono>
#include <cmath>
#include <complex>
#include <cstdio>
#include <numbers>
#include <string>

#include "bench/report.hh"
#include "common/rng.hh"
#include "measure/mdu.hh"
#include "qsim/channels.hh"
#include "qsim/density.hh"
#include "qsim/readout.hh"
#include "qsim/transmon.hh"
#include "signal/envelope.hh"
#include "signal/modulation.hh"

using namespace quma;

namespace {

bool g_smoke = false;
// Prevent the optimiser from discarding benchmark results.
volatile double benchmarkSink = 0.0;

/** Mean ns/op over enough iterations to fill a small time budget. */
template <class F>
double
timeNs(F &&body, std::size_t iters)
{
    if (g_smoke)
        iters = 1;
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i)
        body();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           static_cast<double>(iters);
}

void
report(bench::JsonReport &json, const char *name, double ns,
       double reference_ns = 0.0)
{
    if (reference_ns > 0.0)
        std::printf("%-36s %10.1f ns/op  (generic %10.1f ns, %5.1fx)\n",
                    name, ns, reference_ns, reference_ns / ns);
    else
        std::printf("%-36s %10.1f ns/op\n", name, ns);
    json.metric(name, ns, "ns/op");
}

/** A non-trivial mixed state to run kernels on. */
qsim::DensityMatrix
testState(unsigned nq)
{
    qsim::DensityMatrix rho(nq);
    for (unsigned q = 0; q < nq; ++q) {
        rho.apply1(q, qsim::gates::hadamard());
        rho.applyKraus1(q, qsim::depolarizing(0.05));
    }
    return rho;
}

void
benchDensity(bench::JsonReport &json)
{
    bench::banner("density-matrix kernels");
    for (unsigned nq : {1u, 2u, 4u, 6u}) {
        qsim::DensityMatrix rho = testState(nq);
        auto chan = qsim::idleChannel(100.0, 30000.0, 25000.0);
        auto icp = qsim::idleChannelParams(100.0, 30000.0, 25000.0);
        std::size_t iters = 400000 >> (2 * nq);
        double generic = timeNs(
            [&] { rho.applyKraus1(0, chan); }, iters);
        double closed = timeNs(
            [&] { rho.applyIdle(0, icp.gamma, icp.lambda); }, iters);
        std::string label = "idle_closed_form_nq" + std::to_string(nq);
        report(json, label.c_str(), closed, generic);
        json.metric("idle_generic_kraus_nq" + std::to_string(nq),
                    generic, "ns/op");

        double h = timeNs(
            [&] { rho.apply1(0, qsim::gates::hadamard()); }, iters);
        report(json, ("apply1_fused_nq" + std::to_string(nq)).c_str(),
               h);

        auto rz = qsim::gates::rz(0.137);
        double rzFull = timeNs([&] { rho.apply1(0, rz); }, iters);
        double rzFast = timeNs([&] { rho.applyRz(0, 0.137); }, iters);
        report(json, ("rz_fast_path_nq" + std::to_string(nq)).c_str(),
               rzFast, rzFull);

        if (nq >= 2) {
            auto cz = qsim::gates::cz();
            double czFull =
                timeNs([&] { rho.apply2(1, 0, cz); }, iters);
            double czFast =
                timeNs([&] { rho.applyCzPhase(1, 0); }, iters);
            report(json,
                   ("cz_fast_path_nq" + std::to_string(nq)).c_str(),
                   czFast, czFull);
        }
    }
}

void
benchSignalChain(bench::JsonReport &json)
{
    bench::banner("signal demodulation chain");
    auto rp = qsim::paperQubitParams().readout;
    Rng rng(0x9b1d);

    double readout = timeNs(
        [&] {
            auto t = qsim::simulateReadout(rp, false, 1500, 30000.0, rng);
            (void)t;
        },
        4000);
    report(json, "simulate_readout_1500ns", readout);

    double mduCal = timeNs(
        [&] {
            auto c = measure::calibrateMdu(rp, 1500);
            (void)c;
        },
        4000);
    report(json, "calibrate_mdu_1500ns", mduCal);

    auto trace = qsim::simulateReadout(rp, true, 1500, 30000.0, rng);
    const double twoPi = 2.0 * std::numbers::pi;
    double direct = timeNs(
        [&] {
            // Direct sin/cos reference for the demodulator.
            double dt_ns = 1e9 / trace.trace.rateHz();
            std::complex<double> acc{0.0, 0.0};
            for (std::size_t k = 0; k < trace.trace.size(); ++k) {
                double t_s =
                    ((static_cast<double>(k) + 0.5) * dt_ns) * 1e-9;
                double arg = twoPi * rp.ifHz * t_s;
                acc += trace.trace[k] *
                       std::complex<double>(std::cos(arg),
                                            -std::sin(arg));
            }
            if (!trace.trace.empty())
                acc *= 2.0 / static_cast<double>(trace.trace.size());
            benchmarkSink = acc.real();
        },
        4000);
    double phasor = timeNs(
        [&] {
            auto z = signal::demodulate(trace.trace, rp.ifHz);
            benchmarkSink = z.real();
        },
        4000);
    report(json, "demodulate_300_samples", phasor, direct);

    double gauss = timeNs([&] { benchmarkSink = rng.gaussian(); },
                          2000000);
    report(json, "rng_gaussian", gauss);

    signal::Envelope env = signal::Envelope::gaussian(20.0, 1.0);
    signal::Waveform wf(env.sample(kAwgSampleRateHz), kAwgSampleRateHz);
    double ssb = timeNs(
        [&] {
            auto p = signal::ssbModulate(wf, -50e6, 0.0, 0.0);
            benchmarkSink = p.first[0];
        },
        40000);
    report(json, "ssb_modulate_20_samples", ssb);

    signal::DrivePulse pulse;
    auto [i, q] = signal::ssbModulate(wf, -50e6, 0.0, 0.0);
    pulse.t0Ns = 0;
    pulse.i = i;
    pulse.q = q;
    pulse.ssbHz = -50e6;
    pulse.carrierHz = 6.466e9 + 50e6;
    qsim::TransmonChip chip({qsim::paperQubitParams()});
    double drive = timeNs(
        [&] {
            chip.newRound();
            chip.applyDrive(0, pulse);
        },
        20000);
    report(json, "apply_drive_20_samples", drive);
}

} // namespace

int
main(int argc, char **argv)
{
    g_smoke = bench::argFlag(argc, argv, "--smoke");
    std::string jsonPath = bench::argValue(argc, argv, "--json");

    bench::JsonReport json("qsim_kernels");
    if (g_smoke)
        std::printf("(smoke mode: single iteration, timings "
                    "meaningless)\n");

    benchDensity(json);
    benchSignalChain(json);
    bench::rule();

    return json.writeTo(jsonPath) ? 0 : 1;
}
