/**
 * @file
 * quma_serve: the experiment runtime behind a TCP socket.
 *
 * Starts a shared runtime::ExperimentService and a net::QumaServer
 * speaking the QuMA wire protocol (src/net/README.md), then serves
 * until stdin closes (Ctrl-D, or the end of a piped script). Remote
 * clients -- net::QumaClient, or anything speaking the frame format
 * -- submit jobs, poll, await, and read scheduler/pool stats; each
 * connection is served by its own thread against the one shared
 * machine pool.
 *
 *   $ ./example_quma_serve [--port N] [--workers N] [--queue N]
 *                          [--metrics-port N] [--trace FILE] [--public]
 *                          [--journal FILE] [--journal-fsync MODE]
 *                          [--capture DIR] [--name NAME]
 *
 * --name NAME gives the instance a stable identity in a fleet
 * (surfaced on /healthz and /statusz; the quma_gateway front door
 * labels its per-backend metrics with it -- docs/fleet.md).
 *
 * Default is an ephemeral port on 127.0.0.1 (printed on startup);
 * --public binds all interfaces instead. On shutdown the serving
 * stats -- connections, requests, wire traffic in §7.1 host-link
 * terms -- are printed.
 *
 * OBSERVABILITY. --metrics-port N additionally serves Prometheus
 * text exposition on `GET http://127.0.0.1:N/metrics` (0 = pick an
 * ephemeral port, printed on startup; docs/observability.md lists
 * the families) plus the live introspection pages: /healthz
 * (liveness + journal/recovery state), /statusz (a JSON snapshot of
 * service and serving stats) and /tracez (the current job-lifecycle
 * trace as Chrome trace JSON, without restarting anything). --trace
 * FILE enables job-lifecycle tracing and writes the capture as
 * Chrome trace-event JSON to FILE at shutdown (load it in
 * chrome://tracing or Perfetto); /tracez serves the same dump live
 * and v4 clients can pull-and-merge it over the wire
 * (QumaClient::mergedChromeTrace).
 *
 * DURABILITY (docs/durability.md). --journal FILE write-ahead
 * journals every accepted job; on startup, submitted-but-unfinished
 * work found in FILE is recovered and re-run (a recovery summary is
 * printed). --journal-fsync none|batch|always picks the
 * latency/durability trade-off (default batch). --capture DIR
 * records each connection's wire traffic as DIR/conn-<N>.qcap,
 * replayable byte-for-byte with example_quma_replay.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/metrics.hh"
#include "net/metrics_endpoint.hh"
#include "net/server.hh"
#include "net/transport.hh"
#include "runtime/service.hh"

namespace {

unsigned long
argNum(int argc, char **argv, const char *flag, unsigned long fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return std::strtoul(argv[i + 1], nullptr, 10);
    return fallback;
}

bool
argFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

/** The value following `flag`, or null when the flag is absent. */
const char *
argValue(int argc, char **argv, const char *flag)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return argv[i + 1];
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace quma;

    auto port = static_cast<std::uint16_t>(argNum(argc, argv, "--port", 0));
    auto workers = static_cast<unsigned>(argNum(argc, argv, "--workers", 4));
    auto queue = static_cast<std::size_t>(argNum(argc, argv, "--queue", 256));
    bool open = argFlag(argc, argv, "--public");
    const char *metricsPortArg =
        argValue(argc, argv, "--metrics-port");
    const char *traceFile = argValue(argc, argv, "--trace");
    const char *journalFile = argValue(argc, argv, "--journal");
    const char *journalFsync =
        argValue(argc, argv, "--journal-fsync");
    const char *captureDir = argValue(argc, argv, "--capture");
    const char *instanceName = argValue(argc, argv, "--name");

    // The registry is declared BEFORE the components whose gauge
    // callbacks it will render (and is only enabled when somebody
    // asked to scrape): the components outlive its last render.
    quma::metrics::MetricsRegistry registry(metricsPortArg != nullptr);

    runtime::ServiceConfig sc;
    sc.workers = workers;
    sc.queueCapacity = queue;
    if (journalFile)
        sc.journalPath = journalFile;
    if (instanceName)
        sc.instanceName = instanceName;
    if (journalFsync) {
        auto policy = runtime::fsyncPolicyFromName(journalFsync);
        if (!policy) {
            std::fprintf(stderr,
                         "quma_serve: --journal-fsync wants "
                         "none|batch|always, got '%s'\n",
                         journalFsync);
            return 2;
        }
        sc.journalFsync = *policy;
    }
    runtime::ExperimentService service(sc);
    service.bindMetrics(registry);
    if (traceFile)
        service.trace().enable();
    if (journalFile) {
        const runtime::RecoveryReport &rec = service.recovery();
        std::printf("journal: %s (fsync %s)\n", journalFile,
                    journalFsync ? journalFsync : "batch");
        if (rec.journalExisted)
            std::printf("recovery: %zu records scanned, %zu jobs "
                        "recovered, %zu corrupt records\n",
                        rec.recordsScanned,
                        service.recoveredIds().size(),
                        rec.corruptRecords);
        const runtime::CompactionReport &cr = service.compaction();
        if (cr.performed)
            std::printf("compaction: journal rewritten %zu -> %zu "
                        "records (%zu -> %zu bytes)\n",
                        cr.recordsBefore, cr.recordsAfter,
                        cr.bytesBefore, cr.bytesAfter);
    }

    net::ServerConfig server_cfg;
    if (captureDir)
        server_cfg.captureDir = captureDir;
    auto listener = std::make_unique<net::TcpListener>(port, !open);
    std::uint16_t bound = listener->port();
    net::QumaServer server(service, std::move(listener), server_cfg);
    server.bindMetrics(registry);
    if (captureDir)
        std::printf("capture: wire traffic -> %s/conn-<N>.qcap\n",
                    captureDir);

    // Declared after the server: destroyed (and stopped) first, so
    // no scrape renders callbacks into dying components.
    std::unique_ptr<net::MetricsEndpoint> metricsEndpoint;
    std::uint16_t metricsBound = 0;
    if (metricsPortArg) {
        auto mp = static_cast<std::uint16_t>(
            std::strtoul(metricsPortArg, nullptr, 10));
        auto mlistener =
            std::make_unique<net::TcpListener>(mp, !open);
        metricsBound = mlistener->port();
        metricsEndpoint = std::make_unique<net::MetricsEndpoint>(
            registry, std::move(mlistener));

        // The introspection surface: three live pages next to
        // /metrics. Handlers render on the endpoint's acceptor
        // thread against components that outlive it (the endpoint
        // is stopped first at shutdown).
        const bool traced = traceFile != nullptr;
        metricsEndpoint->addHandler(
            "/healthz", "application/json",
            [&service, traced] {
                const runtime::RecoveryReport &rec =
                    service.recovery();
                char buf[256];
                std::snprintf(
                    buf, sizeof buf,
                    "{\"status\":\"ok\",\"instance\":\"%s\","
                    "\"journal\":%s,"
                    "\"recoveredJobs\":%zu,"
                    "\"corruptRecords\":%zu,"
                    "\"journalCompacted\":%s,"
                    "\"traceEnabled\":%s}\n",
                    service.instanceName().c_str(),
                    service.journal() ? "true" : "false",
                    service.recoveredIds().size(),
                    rec.corruptRecords,
                    service.compaction().performed ? "true"
                                                   : "false",
                    traced ? "true" : "false");
                return std::string(buf);
            });
        metricsEndpoint->addHandler(
            "/statusz", "application/json", [&service, &server] {
                runtime::ServiceStats st = service.stats();
                net::QumaServer::Stats sv = server.stats();
                char buf[1024];
                std::snprintf(
                    buf, sizeof buf,
                    "{\"instance\":\"%s\","
                    "\"scheduler\":{\"submitted\":%zu,"
                    "\"completed\":%zu,\"failed\":%zu,"
                    "\"cancelled\":%zu,\"queueHighWater\":%zu,"
                    "\"shardsExecuted\":%zu,\"shardsStolen\":%zu,"
                    "\"roundsStolen\":%zu},"
                    "\"pool\":{\"machinesCreated\":%zu,"
                    "\"acquisitions\":%zu,\"reuseHits\":%zu},"
                    "\"cache\":{\"programHits\":%zu,"
                    "\"programMisses\":%zu},"
                    "\"effectiveQueueCapacity\":%zu,"
                    "\"server\":{\"connectionsAccepted\":%zu,"
                    "\"connectionsActive\":%zu,"
                    "\"requestsServed\":%zu,\"errorsReturned\":%zu,"
                    "\"resultsStreamed\":%zu,"
                    "\"progressFramesPushed\":%zu,"
                    "\"bytesUp\":%zu,\"bytesDown\":%zu}}\n",
                    service.instanceName().c_str(),
                    st.scheduler.submitted, st.scheduler.completed,
                    st.scheduler.failed, st.scheduler.cancelled,
                    st.scheduler.queueHighWater,
                    st.scheduler.shardsExecuted,
                    st.scheduler.shardsStolen,
                    st.scheduler.roundsStolen,
                    st.pool.machinesCreated, st.pool.acquisitions,
                    st.pool.reuseHits, st.cache.programHits,
                    st.cache.programMisses,
                    st.effectiveQueueCapacity,
                    sv.connectionsAccepted, sv.connectionsActive,
                    sv.requestsServed, sv.errorsReturned,
                    sv.resultsStreamed, sv.progressFramesPushed,
                    sv.link.bytesUp, sv.link.bytesDown);
                return std::string(buf);
            });
        metricsEndpoint->addHandler(
            "/tracez", "application/json", [&service] {
                // The same dump --trace writes at shutdown, served
                // live (empty unless tracing is enabled).
                return service.trace().chromeTraceJson();
            });
    }

    std::printf("quma_serve%s%s: listening on %s:%u (%u workers, "
                "queue %zu)\n",
                instanceName ? " " : "",
                instanceName ? instanceName : "",
                open ? "0.0.0.0" : "127.0.0.1", bound, workers, queue);
    if (metricsEndpoint)
        std::printf("metrics: http://%s:%u/metrics\n",
                    open ? "0.0.0.0" : "127.0.0.1", metricsBound);
    if (traceFile)
        std::printf("tracing: job lifecycle -> %s at shutdown\n",
                    traceFile);
    std::printf("serving until stdin closes...\n");
    std::fflush(stdout);

    // Park until the operator hangs up; the accept and connection
    // threads do all the work.
    while (std::fgetc(stdin) != EOF) {
    }

    if (metricsEndpoint)
        metricsEndpoint->stop();
    server.stop();
    if (traceFile) {
        std::string json = service.trace().chromeTraceJson();
        if (std::FILE *f = std::fopen(traceFile, "w")) {
            std::fwrite(json.data(), 1, json.size(), f);
            std::fclose(f);
            std::printf("trace: %zu events -> %s (%zu dropped)\n",
                        service.trace().eventCount(), traceFile,
                        service.trace().dropped());
        } else {
            std::printf("trace: could not open %s\n", traceFile);
        }
    }
    net::QumaServer::Stats s = server.stats();
    auto sched = service.scheduler().stats();
    std::printf("connections: %zu  requests: %zu  errors: %zu\n",
                s.connectionsAccepted, s.requestsServed,
                s.errorsReturned);
    std::printf("jobs: %zu completed, %zu failed, %zu cancelled "
                "(%zu on disconnect)\n",
                sched.completed, sched.failed, sched.cancelled,
                s.jobsCancelledOnDisconnect);
    std::printf("wire traffic: %zu bytes up / %zu bytes down "
                "(%.3f ms / %.3f ms at the modeled link rate)\n",
                s.link.bytesUp, s.link.bytesDown,
                s.link.secondsUp * 1e3, s.link.secondsDown * 1e3);
    if (service.journal()) {
        runtime::JournalStats js = service.journal()->stats();
        std::printf("journal: %zu records / %zu bytes appended, "
                    "%zu fsyncs, %zu errors\n",
                    js.recordsAppended, js.bytesAppended, js.fsyncs,
                    js.appendErrors);
    }
    return 0;
}
