/**
 * @file
 * quma_serve: the experiment runtime behind a TCP socket.
 *
 * Starts a shared runtime::ExperimentService and a net::QumaServer
 * speaking the QuMA wire protocol (src/net/README.md), then serves
 * until stdin closes (Ctrl-D, or the end of a piped script). Remote
 * clients -- net::QumaClient, or anything speaking the frame format
 * -- submit jobs, poll, await, and read scheduler/pool stats; each
 * connection is served by its own thread against the one shared
 * machine pool.
 *
 *   $ ./example_quma_serve [--port N] [--workers N] [--queue N] [--public]
 *
 * Default is an ephemeral port on 127.0.0.1 (printed on startup);
 * --public binds all interfaces instead. On shutdown the serving
 * stats -- connections, requests, wire traffic in §7.1 host-link
 * terms -- are printed.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "net/server.hh"
#include "net/transport.hh"
#include "runtime/service.hh"

namespace {

unsigned long
argNum(int argc, char **argv, const char *flag, unsigned long fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return std::strtoul(argv[i + 1], nullptr, 10);
    return fallback;
}

bool
argFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace quma;

    auto port = static_cast<std::uint16_t>(argNum(argc, argv, "--port", 0));
    auto workers = static_cast<unsigned>(argNum(argc, argv, "--workers", 4));
    auto queue = static_cast<std::size_t>(argNum(argc, argv, "--queue", 256));
    bool open = argFlag(argc, argv, "--public");

    runtime::ServiceConfig sc;
    sc.workers = workers;
    sc.queueCapacity = queue;
    runtime::ExperimentService service(sc);

    auto listener = std::make_unique<net::TcpListener>(port, !open);
    std::uint16_t bound = listener->port();
    net::QumaServer server(service, std::move(listener));

    std::printf("quma_serve: listening on %s:%u (%u workers, "
                "queue %zu)\n",
                open ? "0.0.0.0" : "127.0.0.1", bound, workers, queue);
    std::printf("serving until stdin closes...\n");
    std::fflush(stdout);

    // Park until the operator hangs up; the accept and connection
    // threads do all the work.
    while (std::fgetc(stdin) != EOF) {
    }

    server.stop();
    net::QumaServer::Stats s = server.stats();
    auto sched = service.scheduler().stats();
    std::printf("connections: %zu  requests: %zu  errors: %zu\n",
                s.connectionsAccepted, s.requestsServed,
                s.errorsReturned);
    std::printf("jobs: %zu completed, %zu failed, %zu cancelled "
                "(%zu on disconnect)\n",
                sched.completed, sched.failed, sched.cancelled,
                s.jobsCancelledOnDisconnect);
    std::printf("wire traffic: %zu bytes up / %zu bytes down "
                "(%.3f ms / %.3f ms at the modeled link rate)\n",
                s.link.bytesUp, s.link.bytesDown,
                s.link.secondsUp * 1e3, s.link.secondsDown * 1e3);
    return 0;
}
