/**
 * @file
 * Fast feedback control: measurement-conditioned active qubit reset.
 *
 * The paper motivates hardware measurement discrimination with
 * sub-microsecond latency precisely to enable this kind of real-time
 * feedback (§4.2.1): measure the qubit, and if it reads |1>, apply
 * an X180 to return it to |0> -- much faster than waiting several T1.
 *
 * The program uses the MD write-back into the register file plus a
 * conditional branch; the scoreboard interlock stalls the branch
 * until the discrimination result lands. Statistics over many rounds
 * compare the reset qubit against an un-reset control.
 *
 *   $ ./active_reset [rounds]
 */

#include <cstdio>
#include <cstdlib>

#include "quma/machine.hh"

int
main(int argc, char **argv)
{
    using namespace quma;

    std::size_t rounds =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;

    core::MachineConfig config;
    // Crisp readout so the feedback decision is reliable.
    config.qubits[0].readout.noiseSigma = 40.0;
    core::QumaMachine machine(config);
    machine.configureDataCollection(2);

    // Each round: excite with 50% probability (X90 then measure
    // projects to a coin flip), then actively reset, then verify.
    // Bin 0 records the pre-reset result, bin 1 the post-reset one.
    std::string src = R"(
        mov r1, 0
    )";
    src += "mov r2, " + std::to_string(rounds) + "\n";
    src += R"(
        mov r15, 40000
        Round:
        QNopReg r15            # relax to |0>
        Pulse {q0}, X90        # coin flip
        Wait 4
        MPG {q0}, 300
        MD {q0}, r7            # pre-reset readout
        Wait 600               # cover discrimination latency
        beq r7, r0, Verify     # already |0>: skip the flip
        Pulse {q0}, X180       # conditional reset pulse
        Wait 4
        Verify:
        MPG {q0}, 300
        MD {q0}, r8            # post-reset readout
        Wait 600
        addi r1, r1, 1
        bne r1, r2, Round
        halt
    )";
    machine.loadAssembly(src);
    auto result = machine.run(
        static_cast<Cycle>(rounds) * 100000 + 1'000'000);

    auto bits = machine.dataCollector().bitAverages();
    std::printf("rounds:                 %zu\n", rounds);
    std::printf("P(|1>) before reset:    %.3f   (coin flip: ~0.5)\n",
                bits[0]);
    std::printf("P(|1>) after reset:     %.3f   (active reset: ~0)\n",
                bits[1]);
    std::printf("feedback latency: measurement window (1.5 us) + "
                "discrimination (0.5 us),\nagainst ~150 us for "
                "passive reset by waiting 5 T1.\n");
    std::printf("timing violations: %zu late, %zu stale\n",
                result.violations.latePoints,
                result.violations.staleEvents);
    return 0;
}
