/**
 * @file
 * quma_gateway: the fleet front door -- N quma_serve backends behind
 * one config-affinity routing gateway (src/net/gateway.hh has the
 * mechanism, docs/fleet.md the operator contract).
 *
 *   $ ./example_quma_serve --port 7001 --name be-a &
 *   $ ./example_quma_serve --port 7002 --name be-b &
 *   $ ./example_quma_gateway --backend be-a=127.0.0.1:7001 \
 *                            --backend be-b=127.0.0.1:7002 \
 *                            [--port N] [--metrics-port N]
 *                            [--max-in-flight N]
 *                            [--health-interval MS] [--public]
 *
 * Each --backend is NAME=HOST:PORT (or just HOST:PORT, which names
 * the backend after its address). Clients connect to the gateway
 * exactly as they would to a single quma_serve -- net::QumaClient,
 * pipelined sweeps, progress pushes, everything -- and the gateway
 * spreads the work across the fleet, fails over dead backends, and
 * answers StatsRequests with the merged fleet view.
 *
 * OBSERVABILITY. --metrics-port serves /metrics (quma_gateway_* and
 * the merged quma_fleet_* families), /healthz (gateway liveness +
 * healthy-backend count) and /statusz (JSON: gateway counters plus
 * per-backend health/routing state -- the CI fleet job reads it to
 * pick its kill -9 victim).
 *
 * OPERATIONS. stdin is a command console until EOF ends the process:
 *
 *     drain NAME      take NAME out of routing (in-flight finishes)
 *     undrain NAME    put NAME back into the rotation
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.hh"
#include "net/gateway.hh"
#include "net/metrics_endpoint.hh"
#include "net/transport.hh"

namespace {

unsigned long
argNum(int argc, char **argv, const char *flag, unsigned long fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return std::strtoul(argv[i + 1], nullptr, 10);
    return fallback;
}

bool
argFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

const char *
argValue(int argc, char **argv, const char *flag)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return argv[i + 1];
    return nullptr;
}

/** Parse NAME=HOST:PORT (or HOST:PORT); false on a malformed spec. */
bool
parseBackend(const std::string &spec, quma::net::GatewayBackend &out)
{
    std::string name;
    std::string addr = spec;
    if (auto eq = spec.find('='); eq != std::string::npos) {
        name = spec.substr(0, eq);
        addr = spec.substr(eq + 1);
    }
    auto colon = addr.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == addr.size())
        return false;
    const std::string host = addr.substr(0, colon);
    const unsigned long port =
        std::strtoul(addr.c_str() + colon + 1, nullptr, 10);
    if (port == 0 || port > 65535)
        return false;
    out = quma::net::tcpBackend(host,
                                static_cast<std::uint16_t>(port));
    if (!name.empty())
        out.name = name;
    return true;
}

std::string
statuszJson(const quma::net::QumaGateway &gateway)
{
    quma::net::QumaGateway::Stats s = gateway.stats();
    std::string json = "{\"gateway\":{";
    auto num = [&json](const char *key, std::size_t v, bool comma) {
        json += "\"";
        json += key;
        json += "\":";
        json += std::to_string(v);
        if (comma)
            json += ",";
    };
    num("connectionsAccepted", s.connectionsAccepted, true);
    num("connectionsActive", s.connectionsActive, true);
    num("requestsForwarded", s.requestsForwarded, true);
    num("resultsForwarded", s.resultsForwarded, true);
    num("progressForwarded", s.progressForwarded, true);
    num("errorsReturned", s.errorsReturned, true);
    num("jobsShed", s.jobsShed, true);
    num("jobsResubmitted", s.jobsResubmitted, true);
    num("failovers", s.failovers, true);
    num("inFlightHighWater", s.inFlightHighWater, true);
    num("jobsInFlight", s.jobsInFlight, false);
    json += "},\"backends\":[";
    for (std::size_t i = 0; i < s.backends.size(); ++i) {
        const auto &b = s.backends[i];
        if (i)
            json += ",";
        json += "{\"name\":\"" + b.name + "\",";
        json += std::string("\"healthy\":") +
                (b.healthy ? "true" : "false") + ",";
        json += std::string("\"draining\":") +
                (b.draining ? "true" : "false") + ",";
        json += "\"jobsRouted\":" + std::to_string(b.jobsRouted) +
                ",";
        json += "\"jobsResubmittedAway\":" +
                std::to_string(b.jobsResubmittedAway);
        if (b.haveStats) {
            json += ",\"completed\":" +
                    std::to_string(b.lastStats.scheduler.completed);
            json += ",\"submitted\":" +
                    std::to_string(b.lastStats.scheduler.submitted);
        }
        json += "}";
    }
    json += "]}\n";
    return json;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace quma;

    auto port =
        static_cast<std::uint16_t>(argNum(argc, argv, "--port", 0));
    bool open = argFlag(argc, argv, "--public");
    const char *metricsPortArg = argValue(argc, argv, "--metrics-port");

    net::GatewayConfig gc;
    gc.maxInFlightPerClient = static_cast<std::size_t>(
        argNum(argc, argv, "--max-in-flight", 256));
    gc.healthInterval = std::chrono::milliseconds(
        argNum(argc, argv, "--health-interval", 500));

    std::vector<net::GatewayBackend> backends;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--backend") != 0)
            continue;
        net::GatewayBackend b;
        if (!parseBackend(argv[i + 1], b)) {
            std::fprintf(stderr,
                         "quma_gateway: bad --backend '%s' "
                         "(want NAME=HOST:PORT or HOST:PORT)\n",
                         argv[i + 1]);
            return 2;
        }
        backends.push_back(std::move(b));
    }
    if (backends.empty()) {
        std::fprintf(
            stderr,
            "usage: %s --backend NAME=HOST:PORT [--backend ...] "
            "[--port N] [--metrics-port N] [--max-in-flight N] "
            "[--health-interval MS] [--public]\n",
            argv[0]);
        return 2;
    }

    metrics::MetricsRegistry registry(metricsPortArg != nullptr);

    auto listener = std::make_unique<net::TcpListener>(port, !open);
    std::uint16_t bound = listener->port();
    net::QumaGateway gateway(std::move(backends), std::move(listener),
                             gc);
    gateway.bindMetrics(registry);

    std::unique_ptr<net::MetricsEndpoint> metricsEndpoint;
    std::uint16_t metricsBound = 0;
    if (metricsPortArg) {
        auto mp = static_cast<std::uint16_t>(
            std::strtoul(metricsPortArg, nullptr, 10));
        auto mlistener = std::make_unique<net::TcpListener>(mp, !open);
        metricsBound = mlistener->port();
        metricsEndpoint = std::make_unique<net::MetricsEndpoint>(
            registry, std::move(mlistener));
        metricsEndpoint->addHandler(
            "/healthz", "application/json", [&gateway] {
                net::QumaGateway::Stats s = gateway.stats();
                std::size_t healthy = 0;
                for (const auto &b : s.backends)
                    if (b.healthy)
                        ++healthy;
                char buf[128];
                std::snprintf(buf, sizeof buf,
                              "{\"status\":\"%s\","
                              "\"backendsHealthy\":%zu,"
                              "\"backends\":%zu}\n",
                              healthy > 0 ? "ok" : "degraded",
                              healthy, s.backends.size());
                return std::string(buf);
            });
        metricsEndpoint->addHandler(
            "/statusz", "application/json",
            [&gateway] { return statuszJson(gateway); });
    }

    net::QumaGateway::Stats boot = gateway.stats();
    std::printf("quma_gateway: listening on %s:%u (%zu backends)\n",
                open ? "0.0.0.0" : "127.0.0.1", bound,
                boot.backends.size());
    for (const auto &b : boot.backends)
        std::printf("backend %s: %s\n", b.name.c_str(),
                    b.healthy ? "healthy" : "DOWN");
    if (metricsEndpoint)
        std::printf("metrics: http://%s:%u/metrics\n",
                    open ? "0.0.0.0" : "127.0.0.1", metricsBound);
    std::printf("routing until stdin closes "
                "(drain NAME / undrain NAME)...\n");
    std::fflush(stdout);

    // The operator console: one command per line until EOF.
    char line[256];
    while (std::fgets(line, sizeof line, stdin)) {
        std::string cmd(line);
        while (!cmd.empty() &&
               (cmd.back() == '\n' || cmd.back() == '\r'))
            cmd.pop_back();
        if (cmd.rfind("drain ", 0) == 0) {
            const std::string name = cmd.substr(6);
            std::printf("%s\n", gateway.drain(name)
                                    ? "draining"
                                    : "no such backend");
        } else if (cmd.rfind("undrain ", 0) == 0) {
            const std::string name = cmd.substr(8);
            std::printf("%s\n", gateway.undrain(name)
                                    ? "undrained"
                                    : "no such backend");
        } else if (!cmd.empty()) {
            std::printf("commands: drain NAME / undrain NAME\n");
        }
        std::fflush(stdout);
    }

    if (metricsEndpoint)
        metricsEndpoint->stop();
    gateway.stop();

    net::QumaGateway::Stats s = gateway.stats();
    std::printf("connections: %zu  forwarded: %zu requests / "
                "%zu results / %zu progress\n",
                s.connectionsAccepted, s.requestsForwarded,
                s.resultsForwarded, s.progressForwarded);
    std::printf("failover: %zu events, %zu jobs resubmitted; "
                "%zu shed, %zu errors\n",
                s.failovers, s.jobsResubmitted, s.jobsShed,
                s.errorsReturned);
    return 0;
}
