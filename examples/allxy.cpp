/**
 * @file
 * The paper's validation experiment, end to end: AllXY described
 * with the OpenQL-lite eDSL, compiled to mixed code, executed on the
 * full microarchitecture, averaged by the data collection unit, and
 * rescaled against the calibration points (paper §8, Figure 9).
 *
 *   $ ./allxy [rounds] [amplitude_error] [detuning_hz]
 *
 * Try `./allxy 512 0.1 0` to see the amplitude-error signature.
 */

#include <cstdio>
#include <cstdlib>

#include "experiments/allxy.hh"

int
main(int argc, char **argv)
{
    using namespace quma;
    using namespace quma::experiments;

    AllxyConfig config;
    config.rounds = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                             : 512;
    if (argc > 2)
        config.amplitudeError = std::strtod(argv[2], nullptr);
    if (argc > 3)
        config.detuningHz = std::strtod(argv[3], nullptr);

    std::printf("AllXY: %zu rounds, amplitude error %+.1f%%, "
                "detuning %+.0f kHz\n",
                config.rounds, config.amplitudeError * 100.0,
                config.detuningHz * 1e-3);

    // Show a slice of the generated program: this is what the
    // compiler hands to the execution controller.
    auto program = buildAllxyProgram(config.rounds, config.qubit);
    std::string assembly = program.compileToAssembly();
    std::printf("\ncompiled program head:\n");
    std::size_t shown = 0, pos = 0;
    while (shown < 12 && pos < assembly.size()) {
        auto eol = assembly.find('\n', pos);
        std::printf("  %s\n",
                    assembly.substr(pos, eol - pos).c_str());
        pos = eol + 1;
        ++shown;
    }
    std::printf("  ... (%zu instructions total)\n\n",
                program.compile().size());

    AllxyResult result = runAllxy(config);

    for (std::size_t i = 0; i < result.fidelity.size(); i += 2) {
        int stars = static_cast<int>(
            (result.fidelity[i] + result.fidelity[i + 1]) * 20 + 0.5);
        stars = std::max(0, std::min(stars, 44));
        std::printf("%-4s ideal %.1f  measured %+.3f %+.3f  |%.*s\n",
                    result.labels[i].c_str(), result.ideal[i],
                    result.fidelity[i], result.fidelity[i + 1], stars,
                    "********************************************");
    }
    std::printf("\ndeviation from ideal staircase: %.4f "
                "(paper: 0.012 at N = 25600)\n",
                result.deviation);
    return 0;
}
