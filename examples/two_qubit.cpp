/**
 * @file
 * Two-qubit control: the CNOT microprogram (paper Algorithm 2) and
 * multiplexed measurement on a two-transmon chip.
 *
 * Demonstrates the multilevel decoding on a two-qubit instruction:
 * `CNOT q0, q1` expands in the Q control store to
 * Ym90(target) / CZ flux pulse / Y90(target), each pulse routed to
 * the right AWG board and fired at exact cycles. Measurement of both
 * qubits packs one result bit per qubit into the destination
 * register.
 *
 *   $ ./two_qubit [rounds]
 */

#include <cstdio>
#include <cstdlib>

#include "quma/machine.hh"

int
main(int argc, char **argv)
{
    using namespace quma;

    std::size_t rounds =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100;

    core::MachineConfig config;
    qsim::TransmonParams q0 = qsim::paperQubitParams();
    qsim::TransmonParams q1 = qsim::paperQubitParams();
    q1.freqHz = 6.100e9; // second transmon on its own drive line
    config.qubits = {q0, q1};
    config.numAwgs = 2;
    config.driveAwg = {0, 1};
    config.qubits[0].readout.noiseSigma = 40.0;
    config.qubits[1].readout.noiseSigma = 40.0;

    core::QumaMachine machine(config);
    machine.configureDataCollection(2); // one bin per qubit

    // Each round: init both, flip the control, CNOT, measure both.
    // Expected joint outcome: |11> (control flipped the target).
    std::string src = "mov r1, 0\nmov r2, " + std::to_string(rounds) +
                      "\nmov r15, 40000\n";
    src += R"(
        Round:
        QNopReg r15
        Pulse {q1}, X180      # flip the control qubit
        Wait 4
        CNOT q0, q1           # expanded by the Q control store
        Measure q0, r7
        Measure q1, r8
        Wait 600
        addi r1, r1, 1
        bne r1, r2, Round
        halt
    )";
    machine.loadAssembly(src);
    auto result = machine.run(
        static_cast<Cycle>(rounds) * 100000 + 1'000'000);

    auto bits = machine.dataCollector().bitAverages();
    std::printf("rounds:               %zu\n", rounds);
    std::printf("P(target q0 = |1>):   %.3f   (expect ~1: flipped by "
                "CNOT)\n",
                bits[0]);
    std::printf("P(control q1 = |1>):  %.3f   (expect ~1)\n", bits[1]);
    std::printf("last round: r7 = %lld, r8 = %lld\n",
                static_cast<long long>(machine.registers().read(7)),
                static_cast<long long>(machine.registers().read(8)));
    std::printf("timing violations: %zu late, %zu stale\n",
                result.violations.latePoints,
                result.violations.staleEvents);
    return 0;
}
