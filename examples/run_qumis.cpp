/**
 * @file
 * A command-line driver for the simulator: assemble and execute a
 * QuMIS program from a file (or stdin) and report registers, data
 * collection averages and, optionally, the full pulse-level trace.
 *
 *   $ ./run_qumis program.qasm [--trace] [--bins K] [--qubits N]
 *   $ echo 'Wait 10
 *           Pulse {q0}, X180
 *           Wait 600
 *           halt' | ./run_qumis -
 *
 * This is the tool to poke at the microarchitecture interactively:
 * write a program, run it, look at exactly when every codeword and
 * pulse fired.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "isa/nametable.hh"
#include "quma/machine.hh"

namespace {

void
usage()
{
    std::fprintf(stderr,
                 "usage: run_qumis <file|-> [--trace] [--bins K] "
                 "[--qubits N]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace quma;

    if (argc < 2) {
        usage();
        return 2;
    }

    std::string path;
    bool trace = false;
    std::size_t bins = 0;
    unsigned qubits = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0) {
            trace = true;
        } else if (std::strcmp(argv[i], "--bins") == 0 &&
                   i + 1 < argc) {
            bins = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--qubits") == 0 &&
                   i + 1 < argc) {
            qubits = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (path.empty()) {
            path = argv[i];
        } else {
            usage();
            return 2;
        }
    }

    std::string source;
    if (path == "-") {
        std::ostringstream buf;
        buf << std::cin.rdbuf();
        source = buf.str();
    } else {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "run_qumis: cannot open '%s'\n",
                         path.c_str());
            return 1;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        source = buf.str();
    }

    core::MachineConfig config;
    config.qubits.assign(qubits, qsim::paperQubitParams());
    config.traceEnabled = trace;
    core::QumaMachine machine(config);
    if (bins > 0)
        machine.configureDataCollection(bins);

    try {
        machine.loadAssembly(source);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "run_qumis: %s\n", e.what());
        return 1;
    }

    core::RunResult result;
    try {
        result = machine.run();
    } catch (const FatalError &e) {
        std::fprintf(stderr, "run_qumis: runtime error: %s\n",
                     e.what());
        return 1;
    }

    std::printf("halted: %s after %llu cycles (%.3f ms)\n",
                result.halted ? "yes" : "no",
                static_cast<unsigned long long>(result.cyclesRun),
                static_cast<double>(cyclesToNs(result.cyclesRun)) *
                    1e-6);
    std::printf("timing violations: %zu late, %zu stale\n",
                result.violations.latePoints,
                result.violations.staleEvents);

    std::printf("registers (non-zero):\n");
    for (unsigned r = 0; r < kNumRegisters; ++r) {
        std::int64_t v = machine.registers().read(
            static_cast<RegIndex>(r));
        if (v != 0)
            std::printf("  r%-3u = %lld\n", r,
                        static_cast<long long>(v));
    }

    if (bins > 0) {
        auto s = machine.dataCollector().averages();
        auto b = machine.dataCollector().bitAverages();
        std::printf("data collection (%zu samples):\n",
                    machine.dataCollector().sampleCount());
        for (std::size_t i = 0; i < s.size(); ++i)
            std::printf("  bin %-3zu S = %10.2f   P(|1>) = %.3f\n", i,
                        s[i], b[i]);
    }

    if (trace) {
        auto names = isa::NameTable::standardUops();
        std::printf("codeword triggers:\n");
        for (const auto &c : machine.trace().codewords()) {
            auto n =
                names.nameOf(static_cast<std::uint8_t>(c.codeword));
            std::printf("  TD %-10llu CW %-3u (%s) -> CTPG%u\n",
                        static_cast<unsigned long long>(c.td),
                        c.codeword, n ? n->c_str() : "?", c.awg);
        }
        std::printf("pulses at the chip:\n");
        for (const auto &p : machine.trace().pulses())
            std::printf("  t = %-10lld ns  cw %-3u  %4.0f ns  "
                        "mask 0x%x\n",
                        static_cast<long long>(p.t0Ns), p.codeword,
                        p.durationNs, p.mask);
        std::printf("measurements:\n");
        for (const auto &m : machine.trace().measurements())
            std::printf("  window at cycle %-10llu qubit %u  "
                        "true |%d>\n",
                        static_cast<unsigned long long>(
                            m.windowStart),
                        m.qubit, m.trueOutcome);
    }
    return 0;
}
