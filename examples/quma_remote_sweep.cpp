/**
 * @file
 * quma_remote_sweep: a remote AllXY amplitude sweep against a
 * running quma_serve, exercising the full serving surface.
 *
 * Connects a net::QumaClient to the given host/port, pipelines one
 * AllXY job per amplitude-error point (submitAll: every spec is on
 * the wire before the first id comes back), then streams the results
 * in COMPLETION order (awaitMany: the server pushes each result the
 * moment its job finishes). Afterwards the serving runtime's stats
 * frame -- scheduler, pool, and (wire v3) program/LUT cache -- is
 * fetched and printed alongside this connection's own link meter.
 *
 *   $ ./example_quma_serve --port 7777 &
 *   $ ./example_quma_remote_sweep --port 7777 [--host 127.0.0.1]
 *                                 [--points N] [--rounds N]
 *
 * Used by the CI metrics-scrape job as the load generator behind a
 * /metrics validation (.github/workflows/ci.yml).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "experiments/allxy.hh"
#include "net/client.hh"

namespace {

unsigned long
argNum(int argc, char **argv, const char *flag, unsigned long fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return std::strtoul(argv[i + 1], nullptr, 10);
    return fallback;
}

const char *
argStr(int argc, char **argv, const char *flag, const char *fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return argv[i + 1];
    return fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace quma;

    auto port =
        static_cast<std::uint16_t>(argNum(argc, argv, "--port", 0));
    auto points =
        static_cast<std::size_t>(argNum(argc, argv, "--points", 8));
    auto rounds =
        static_cast<std::size_t>(argNum(argc, argv, "--rounds", 16));
    std::string host = argStr(argc, argv, "--host", "127.0.0.1");
    if (port == 0) {
        std::fprintf(stderr,
                     "usage: %s --port N [--host H] [--points N] "
                     "[--rounds N]\n",
                     argv[0]);
        return 2;
    }

    net::QumaClient client(host, port);

    // One job per amplitude-error point. Identical machine config
    // across points would defeat the sweep, so each point's error is
    // distinct -- which also exercises the pool's keyed sharding and
    // the program cache on the serving side.
    std::vector<runtime::JobSpec> specs;
    specs.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        experiments::AllxyConfig cfg;
        cfg.rounds = rounds;
        cfg.shards = 1;
        cfg.amplitudeError =
            0.05 * static_cast<double>(i) /
            static_cast<double>(points > 1 ? points - 1 : 1);
        cfg.seed = 0x5eed + i;
        specs.push_back(experiments::allxyJob(cfg));
    }

    std::printf("submitting %zu AllXY jobs (%zu rounds each) to "
                "%s:%u...\n",
                specs.size(), rounds, host.c_str(), port);
    std::vector<runtime::JobId> ids =
        client.submitAll(std::move(specs));

    std::size_t streamed = 0;
    for (const auto &[id, result] : client.awaitMany(ids)) {
        ++streamed;
        if (result.failed()) {
            std::printf("job %llu FAILED: %s\n",
                        static_cast<unsigned long long>(id),
                        result.error.c_str());
            continue;
        }
        double first =
            result.averages.empty() ? 0.0 : result.averages.front();
        std::printf("job %llu done (%zu/%zu): %zu bins, "
                    "point0 = %.4f\n",
                    static_cast<unsigned long long>(id), streamed,
                    ids.size(), result.averages.size(), first);
    }

    net::StatsFrame stats = client.stats();
    std::printf("\nserver scheduler: %zu submitted, %zu completed, "
                "%zu failed\n",
                stats.scheduler.submitted, stats.scheduler.completed,
                stats.scheduler.failed);
    std::printf("server pool: %zu machines created, %zu reuse hits, "
                "%zu resets\n",
                stats.pool.machinesCreated, stats.pool.reuseHits,
                stats.pool.machineResets);
    std::printf("server cache: programs %zu hit / %zu miss "
                "(%zu evicted), LUTs %zu hit / %zu miss "
                "(%zu evicted)\n",
                stats.cache.programHits, stats.cache.programMisses,
                stats.cache.programEvictions, stats.cache.lutHits,
                stats.cache.lutMisses, stats.cache.lutEvictions);
    core::LinkStats link = client.linkStats();
    std::printf("wire traffic: %zu bytes up / %zu bytes down\n",
                link.bytesUp, link.bytesDown);
    return 0;
}
