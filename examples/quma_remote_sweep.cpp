/**
 * @file
 * quma_remote_sweep: a remote AllXY amplitude sweep against a
 * running quma_serve, exercising the full serving surface.
 *
 * Connects a net::QumaClient to the given host/port, pipelines one
 * AllXY job per amplitude-error point (submitAll: every spec is on
 * the wire before the first id comes back), then streams the results
 * in COMPLETION order (awaitMany: the server pushes each result the
 * moment its job finishes). Afterwards the serving runtime's stats
 * frame -- scheduler, pool, and (wire v3) program/LUT cache -- is
 * fetched and printed alongside this connection's own link meter.
 *
 *   $ ./example_quma_serve --port 7777 &
 *   $ ./example_quma_remote_sweep --port 7777 [--host 127.0.0.1]
 *                                 [--points N] [--rounds N]
 *                                 [--progress] [--trace-out FILE]
 *                                 [--dump FILE]
 *
 * --dump FILE writes every result bin as exact hex floats (%a),
 * keyed by SUBMISSION index rather than job id -- so two runs are
 * byte-diffable no matter what ids were minted or in what order
 * results streamed back. The CI fleet job diffs a gateway-routed
 * sweep against a direct single-server run with it (bit-identity
 * through the fleet; docs/fleet.md).
 *
 * --progress prints live per-job shard progress as the server pushes
 * it (wire v4 ProgressFrames; rate-limited server-side). --trace-out
 * FILE records client spans, pulls the server's job-lifecycle trace
 * over the wire, and writes ONE merged clock-aligned Chrome trace
 * JSON to FILE (QumaClient::mergedChromeTrace; the server needs
 * --trace for its half, but the client half works regardless).
 *
 * Used by the CI metrics-scrape job as the load generator behind a
 * /metrics validation (.github/workflows/ci.yml).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "experiments/allxy.hh"
#include "net/client.hh"

namespace {

unsigned long
argNum(int argc, char **argv, const char *flag, unsigned long fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return std::strtoul(argv[i + 1], nullptr, 10);
    return fallback;
}

const char *
argStr(int argc, char **argv, const char *flag, const char *fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return argv[i + 1];
    return fallback;
}

bool
argFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace quma;

    auto port =
        static_cast<std::uint16_t>(argNum(argc, argv, "--port", 0));
    auto points =
        static_cast<std::size_t>(argNum(argc, argv, "--points", 8));
    auto rounds =
        static_cast<std::size_t>(argNum(argc, argv, "--rounds", 16));
    auto shards =
        static_cast<std::uint32_t>(argNum(argc, argv, "--shards", 1));
    std::string host = argStr(argc, argv, "--host", "127.0.0.1");
    bool progress = argFlag(argc, argv, "--progress");
    const char *traceOut = argStr(argc, argv, "--trace-out", nullptr);
    const char *dumpFile = argStr(argc, argv, "--dump", nullptr);
    if (port == 0) {
        std::fprintf(stderr,
                     "usage: %s --port N [--host H] [--points N] "
                     "[--rounds N] [--shards N] [--progress] "
                     "[--trace-out FILE] [--dump FILE]\n",
                     argv[0]);
        return 2;
    }

    net::QumaClient client(host, port);
    if (traceOut)
        client.enableSpans();

    // One job per amplitude-error point. Identical machine config
    // across points would defeat the sweep, so each point's error is
    // distinct -- which also exercises the pool's keyed sharding and
    // the program cache on the serving side.
    std::vector<runtime::JobSpec> specs;
    specs.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        experiments::AllxyConfig cfg;
        cfg.rounds = rounds;
        // Sharded jobs (--shards > 1) execute round by round and so
        // stream INCREMENTAL progress; a 1-shard job is one machine
        // run and reports a single 100% frame at completion.
        cfg.shards = shards;
        cfg.amplitudeError =
            0.05 * static_cast<double>(i) /
            static_cast<double>(points > 1 ? points - 1 : 1);
        cfg.seed = 0x5eed + i;
        specs.push_back(experiments::allxyJob(cfg));
    }

    std::printf("submitting %zu AllXY jobs (%zu rounds each) to "
                "%s:%u...\n",
                specs.size(), rounds, host.c_str(), port);
    std::vector<runtime::JobId> ids =
        client.submitAll(std::move(specs));

    // Live progress, if asked for: the server pushes per-job shard
    // progress down this connection (wire v4); the callback runs on
    // the client's reader thread (stdio locks per call, so the
    // lines never shear against the result prints below).
    net::QumaClient::ProgressFn onProgress;
    if (progress)
        onProgress = [](runtime::JobId id, std::uint64_t done,
                        std::uint64_t total) {
            std::printf("progress: job %llu %llu/%llu rounds\n",
                        static_cast<unsigned long long>(id),
                        static_cast<unsigned long long>(done),
                        static_cast<unsigned long long>(total));
        };

    // id -> submission index, so the --dump artifact is ordered by
    // the sweep point, not by whatever ids the server (or a gateway
    // in front of it) minted.
    std::unordered_map<runtime::JobId, std::size_t> indexOf;
    for (std::size_t i = 0; i < ids.size(); ++i)
        indexOf.emplace(ids[i], i);
    std::vector<runtime::JobResult> byIndex(ids.size());

    std::size_t streamed = 0;
    for (const auto &[id, result] : client.awaitMany(ids, onProgress)) {
        ++streamed;
        if (dumpFile)
            byIndex[indexOf.at(id)] = result;
        if (result.failed()) {
            std::printf("job %llu FAILED: %s\n",
                        static_cast<unsigned long long>(id),
                        result.error.c_str());
            continue;
        }
        double first =
            result.averages.empty() ? 0.0 : result.averages.front();
        std::printf("job %llu done (%zu/%zu): %zu bins, "
                    "point0 = %.4f\n",
                    static_cast<unsigned long long>(id), streamed,
                    ids.size(), result.averages.size(), first);
    }

    net::StatsFrame stats = client.stats();
    std::printf("\nserver scheduler: %zu submitted, %zu completed, "
                "%zu failed\n",
                stats.scheduler.submitted, stats.scheduler.completed,
                stats.scheduler.failed);
    std::printf("server pool: %zu machines created, %zu reuse hits, "
                "%zu resets\n",
                stats.pool.machinesCreated, stats.pool.reuseHits,
                stats.pool.machineResets);
    std::printf("server cache: programs %zu hit / %zu miss "
                "(%zu evicted), LUTs %zu hit / %zu miss "
                "(%zu evicted)\n",
                stats.cache.programHits, stats.cache.programMisses,
                stats.cache.programEvictions, stats.cache.lutHits,
                stats.cache.lutMisses, stats.cache.lutEvictions);
    core::LinkStats link = client.linkStats();
    std::printf("wire traffic: %zu bytes up / %zu bytes down\n",
                link.bytesUp, link.bytesDown);

    if (dumpFile) {
        // Exact hex floats (%a) keyed by sweep-point index: two runs
        // of the same sweep are `diff`-equal iff bit-identical.
        std::FILE *f = std::fopen(dumpFile, "w");
        if (!f) {
            std::printf("dump: could not open %s\n", dumpFile);
            return 1;
        }
        for (std::size_t i = 0; i < byIndex.size(); ++i) {
            const runtime::JobResult &r = byIndex[i];
            if (r.failed()) {
                std::fprintf(f, "point %zu FAILED %s\n", i,
                             r.error.c_str());
                continue;
            }
            std::fprintf(f, "point %zu samples %zu\n", i,
                         r.sampleCount);
            for (std::size_t b = 0; b < r.averages.size(); ++b)
                std::fprintf(f, "point %zu avg %zu %a\n", i, b,
                             r.averages[b]);
            for (std::size_t b = 0; b < r.bitAverages.size(); ++b)
                std::fprintf(f, "point %zu bit %zu %a\n", i, b,
                             r.bitAverages[b]);
        }
        std::fclose(f);
        std::printf("dump: %zu points -> %s\n", byIndex.size(),
                    dumpFile);
    }

    if (traceOut) {
        // One merged trace: client spans + the server's lifecycle
        // events pulled over the wire, clock-aligned into the client
        // timebase (docs/observability.md has the recipe).
        std::string json = client.mergedChromeTrace();
        if (std::FILE *f = std::fopen(traceOut, "w")) {
            std::fwrite(json.data(), 1, json.size(), f);
            std::fclose(f);
            std::printf("trace: %zu client spans merged with server "
                        "dump -> %s (traceId %016llx)\n",
                        client.spans().size(), traceOut,
                        static_cast<unsigned long long>(
                            client.traceId()));
        } else {
            std::printf("trace: could not open %s\n", traceOut);
            return 1;
        }
    }
    return 0;
}
