/**
 * @file
 * A calibration session: Rabi amplitude sweep followed by an AllXY
 * check -- the workflow the paper's intro motivates (tune-up of
 * single-qubit control, then verification that the pulses and timing
 * are right).
 *
 * Each Rabi point recalibrates and re-uploads the lookup table (7
 * pulses, 420 bytes) -- the cheap reconfiguration the codeword
 * scheme buys compared with re-rendering whole waveforms.
 *
 *   $ ./calibration [points] [rounds]
 */

#include <cstdio>
#include <cstdlib>

#include "experiments/allxy.hh"
#include "experiments/rabi.hh"

int
main(int argc, char **argv)
{
    using namespace quma;
    using namespace quma::experiments;

    unsigned points =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 16;
    std::size_t rounds =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 192;

    // ---------------------------------------------- Rabi amplitude
    RabiConfig rabi = RabiConfig::withLinearSweep(2.0, points);
    rabi.rounds = rounds;
    std::printf("Rabi sweep: %u amplitudes, %zu rounds each\n\n",
                points, rounds);
    RabiResult r = runRabi(rabi);

    std::printf("%-12s %-10s %s\n", "amp scale", "P(|1>)", "plot");
    for (std::size_t i = 0; i < r.amplitudeScales.size(); ++i) {
        int stars =
            static_cast<int>(r.population[i] * 40.0 + 0.5);
        stars = std::max(0, std::min(stars, 44));
        std::printf("%-12.3f %-10.3f |%.*s\n", r.amplitudeScales[i],
                    r.population[i], stars,
                    "********************************************");
    }
    std::printf("\nfitted pi-pulse amplitude scale: %.4f "
                "(calibrated value: 1.0)\n\n",
                r.piAmplitude);

    // -------------------------------------------------- AllXY check
    std::printf("verification: AllXY at the fitted calibration\n");
    AllxyConfig check;
    check.rounds = rounds;
    check.amplitudeError = r.piAmplitude - 1.0;
    AllxyResult a = runAllxy(check);
    std::printf("AllXY deviation: %.4f  (a well-calibrated qubit "
                "sits at the statistical floor)\n",
                a.deviation);
    return 0;
}
