/**
 * @file
 * Quickstart: the smallest useful QuMA session.
 *
 * Builds the default machine (one simulated transmon behind the
 * control box), uploads the standard calibrated lookup tables,
 * assembles a short mixed classical + QuMIS program that excites the
 * qubit and measures it, runs, and reads the result back from the
 * register file.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "quma/machine.hh"

int
main()
{
    using namespace quma;

    // 1. A machine with the paper's qubit 2 parameters.
    core::MachineConfig config;
    core::QumaMachine machine(config);

    // 2. Calibrate: renders the Table 1 pulses into the AWG wave
    //    memories and matched filters into the MDUs.
    machine.uploadStandardCalibration();

    // 3. A program in the paper's assembly syntax. The mov/QNopReg
    //    pair shows runtime-computed timing; Pulse/Wait/MPG/MD are
    //    the QuMIS microinstructions of Table 6. Eight shots: the
    //    qubit and its readout are stochastic, so even "excite and
    //    measure" deserves statistics.
    machine.configureDataCollection(1);
    machine.loadAssembly(R"(
        mov r15, 40000      # initialisation wait: 200 us
        mov r1, 0
        mov r2, 8           # number of shots
        Shot:
        QNopReg r15         # init the qubit by relaxation
        Pulse {q0}, X180    # excite
        Wait 4              # one gate time (20 ns)
        MPG {q0}, 300       # 1.5 us measurement pulse
        MD {q0}, r7         # discriminate into r7
        Wait 600            # let the discrimination finish
        addi r1, r1, 1
        bne r1, r2, Shot
        halt
    )");

    // 4. Run to completion.
    auto result = machine.run();

    std::printf("ran %llu cycles (%.3f ms of experiment time)\n",
                static_cast<unsigned long long>(result.cyclesRun),
                static_cast<double>(cyclesToNs(result.cyclesRun)) *
                    1e-6);
    std::printf("timing violations: %zu late, %zu stale\n",
                result.violations.latePoints,
                result.violations.staleEvents);
    std::printf("last shot's result in r7: %lld\n",
                static_cast<long long>(machine.registers().read(7)));
    std::printf("P(|1>) over 8 shots: %.2f (expect ~0.95 after an "
                "X180; the rest is\nT1 decay inside the readout "
                "window)\n",
                machine.dataCollector().bitAverages()[0]);
    return 0;
}
