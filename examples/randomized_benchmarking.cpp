/**
 * @file
 * Randomized benchmarking on the full microarchitecture (paper §8).
 *
 * Random Clifford sequences (generated from the self-verifying
 * 24-element group over the Table 1 primitives) run through the
 * compiler, execution controller, QMB, timing unit, AWGs and MDU;
 * the survival decay yields the average error per gate.
 *
 *   $ ./randomized_benchmarking [max_length] [rounds]
 */

#include <cstdio>
#include <cstdlib>

#include "experiments/rb.hh"

int
main(int argc, char **argv)
{
    using namespace quma;
    using namespace quma::experiments;

    unsigned maxLen =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 96;
    std::size_t rounds =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 128;

    RbConfig config;
    config.lengths.clear();
    for (unsigned m = 2; m <= maxLen; m *= 2)
        config.lengths.push_back(m);
    if (config.lengths.empty() || config.lengths.back() != maxLen)
        config.lengths.push_back(maxLen);
    config.seedsPerLength = 4;
    config.rounds = rounds;
    // Shortened coherence makes the decay visible at these lengths.
    config.qubitParams.t1Ns = 6000.0;
    config.qubitParams.t2Ns = 5000.0;

    std::printf("randomized benchmarking: lengths up to %u, "
                "%u seeds/length, %zu rounds\n\n",
                maxLen, config.seedsPerLength, rounds);

    const auto &group = CliffordGroup::instance();
    std::printf("Clifford group: %zu elements, avg %.3f primitives "
                "per element\n",
                group.size(), group.averageGateCount());
    std::printf("example decomposition (element 7):");
    for (const auto &g : group.element(7).gateNames)
        std::printf(" %s", g.c_str());
    std::printf("\n\n");

    RbResult result = runRb(config);

    std::printf("%-8s %s\n", "m", "survival");
    for (std::size_t i = 0; i < result.lengths.size(); ++i)
        std::printf("%-8u %.4f\n", result.lengths[i],
                    result.survival[i]);
    std::printf("\ndepolarising parameter p = %.5f per Clifford\n",
                result.p);
    std::printf("error per Clifford r = %.5f\n",
                result.errorPerClifford);
    std::printf("error per primitive gate = %.5f\n",
                result.errorPerGate);
    return 0;
}
