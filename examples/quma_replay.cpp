/**
 * @file
 * quma_replay: re-drive captured sessions, diff every result.
 *
 *   $ ./example_quma_replay [--workers N] [--queue N]
 *                           [--timeout-ms N] FILE...
 *
 * Each FILE is a connection capture recorded by
 * `quma_serve --capture DIR` (DIR/conn-<N>.qcap; format in
 * src/net/capture.hh). For each one, a fresh in-process
 * ExperimentService is booted, the captured inbound frames are
 * re-sent in order (job ids remapped through the Submit replies),
 * and every captured AwaitReply is byte-compared against the
 * replayed one -- the determinism contract says they must be
 * identical, so any diff is a real regression (or a real
 * nondeterminism bug), not noise.
 *
 * Exit status: 0 when every file replays with every result matching;
 * 1 on any mismatch/timeout; 2 on unusable input. That makes the
 * tool directly usable as a CI gate over checked-in captures (see
 * the durability job in .github/workflows/ci.yml).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/capture.hh"
#include "net/replay.hh"
#include "net/wire.hh"

namespace {

unsigned long
argNum(int argc, char **argv, const char *flag, unsigned long fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return std::strtoul(argv[i + 1], nullptr, 10);
    return fallback;
}

/** Positional arguments: everything that is not a flag or its value. */
std::vector<std::string>
positional(int argc, char **argv)
{
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--", 2) == 0) {
            ++i; // every flag of this tool takes a value
            continue;
        }
        files.emplace_back(argv[i]);
    }
    return files;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace quma;

    net::ReplayOptions options;
    options.workers =
        static_cast<unsigned>(argNum(argc, argv, "--workers", 2));
    options.queueCapacity =
        static_cast<std::size_t>(argNum(argc, argv, "--queue", 4096));
    options.timeout = std::chrono::milliseconds(
        argNum(argc, argv, "--timeout-ms", 120'000));

    std::vector<std::string> files = positional(argc, argv);
    if (files.empty()) {
        std::fprintf(stderr,
                     "usage: %s [--workers N] [--queue N] "
                     "[--timeout-ms N] FILE...\n",
                     argv[0]);
        return 2;
    }

    bool all_ok = true;
    for (const std::string &file : files) {
        net::CaptureFile capture = net::readCapture(file);
        if (!capture.valid) {
            std::fprintf(stderr, "%s: not a capture file\n",
                         file.c_str());
            return 2;
        }
        net::ReplayReport report;
        try {
            report = net::replayCapture(capture, options);
        } catch (const net::WireError &ex) {
            std::fprintf(stderr, "%s: %s\n", file.c_str(), ex.what());
            return 2;
        }
        std::printf("%s: %zu frames sent, %zu/%zu results matched"
                    "%s%s\n",
                    file.c_str(), report.framesSent,
                    report.matchedResults, report.awaitedResults,
                    report.timedOut ? ", TIMEOUTS" : "",
                    capture.corruptRecords ? " (torn tail dropped)"
                                           : "");
        for (const net::ReplayMismatch &m : report.mismatches)
            std::printf("  MISMATCH rid=%llu: %s\n",
                        static_cast<unsigned long long>(m.requestId),
                        m.reason.c_str());
        all_ok = all_ok && report.ok();
    }
    return all_ok ? 0 : 1;
}
