/**
 * @file
 * Cross-module integration tests: multi-qubit machines, the CNOT
 * microprogram on real (simulated) hardware, horizontal pulses,
 * multi-qubit measurement packing, and coherence experiments
 * end to end.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "experiments/coherence.hh"
#include "quma/machine.hh"

namespace quma::core {
namespace {

MachineConfig
twoQubitConfig()
{
    MachineConfig cfg;
    qsim::TransmonParams q0 = qsim::paperQubitParams();
    qsim::TransmonParams q1 = qsim::paperQubitParams();
    // A second transmon at a different frequency on its own AWG.
    q1.freqHz = 6.100e9;
    cfg.qubits = {q0, q1};
    cfg.numAwgs = 2;
    cfg.driveAwg = {0, 1};
    return cfg;
}

TEST(Integration, TwoQubitIndependentDrives)
{
    MachineConfig cfg = twoQubitConfig();
    QumaMachine m(cfg);
    m.loadAssembly(R"(
        Wait 100
        Pulse {q0}, X180
        Wait 4
        Wait 600
        halt
    )");
    m.run(1'000'000);
    EXPECT_GT(m.chip().probabilityOne(0), 0.99);
    EXPECT_LT(m.chip().probabilityOne(1), 0.01);
}

TEST(Integration, HorizontalPulseDrivesBothQubits)
{
    MachineConfig cfg = twoQubitConfig();
    QumaMachine m(cfg);
    m.loadAssembly(R"(
        Wait 100
        Pulse ({q0, q1}, X180)
        Wait 4
        Wait 600
        halt
    )");
    m.run(1'000'000);
    EXPECT_GT(m.chip().probabilityOne(0), 0.99);
    EXPECT_GT(m.chip().probabilityOne(1), 0.99);
}

TEST(Integration, CnotMicroprogramOnHardware)
{
    // |10> -> |11>: flip the control (q1), then CNOT q0, q1 through
    // the full microarchitecture (paper Algorithm 2 microprogram,
    // CZ flux pulse included).
    MachineConfig cfg = twoQubitConfig();
    QumaMachine m(cfg);
    m.loadAssembly(R"(
        Wait 100
        Pulse {q1}, X180
        Wait 4
        CNOT q0, q1
        Wait 600
        halt
    )");
    auto r = m.run(1'000'000);
    EXPECT_TRUE(r.violations.clean());
    EXPECT_GT(m.chip().probabilityOne(0), 0.98);
    EXPECT_GT(m.chip().probabilityOne(1), 0.98);
}

TEST(Integration, CnotWithControlZeroDoesNothing)
{
    MachineConfig cfg = twoQubitConfig();
    QumaMachine m(cfg);
    m.loadAssembly(R"(
        Wait 100
        CNOT q0, q1
        Wait 600
        halt
    )");
    m.run(1'000'000);
    EXPECT_LT(m.chip().probabilityOne(0), 0.02);
    EXPECT_LT(m.chip().probabilityOne(1), 0.02);
}

TEST(Integration, MultiQubitMeasurePacksBits)
{
    MachineConfig cfg = twoQubitConfig();
    QumaMachine m(cfg);
    m.loadAssembly(R"(
        Wait 100
        Pulse {q1}, X180
        Wait 4
        MPG {q0, q1}, 300
        MD {q0, q1}, r7
        Wait 600
        halt
    )");
    m.run(1'000'000);
    // q0 reads 0 (bit 0), q1 reads 1 (bit 1): r7 = 0b10.
    EXPECT_EQ(m.registers().read(7), 0b10);
}

TEST(Integration, MeasurementsOnDistinctQubitsDontCollide)
{
    MachineConfig cfg = twoQubitConfig();
    cfg.traceEnabled = true;
    QumaMachine m(cfg);
    m.loadAssembly(R"(
        Wait 100
        MPG {q0, q1}, 300
        MD {q0, q1}, r7
        Wait 600
        halt
    )");
    auto r = m.run(1'000'000);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(m.trace().measurements().size(), 2u);
    EXPECT_EQ(m.registers().read(7), 0);
}

// ----------------------------------------------------- coherence sweeps

TEST(Integration, T1ExperimentRecoversConfiguredT1)
{
    using namespace quma::experiments;
    // Sweep to 3 * T1 so the tail pins the fit's offset (a shorter
    // noisy sweep leaves the 3-parameter fit degenerate).
    CoherenceConfig cfg = CoherenceConfig::withLinearSweep(90000, 10);
    cfg.rounds = 256;
    cfg.qubitParams.t1Ns = 30000.0;
    cfg.qubitParams.t2Ns = 25000.0;
    auto r = runT1(cfg);
    EXPECT_TRUE(r.run.halted);
    ASSERT_EQ(r.population.size(), 10u);
    // Population decays.
    EXPECT_GT(r.population.front(), r.population.back() + 0.2);
    // Fitted T1 within 30% of the configured value.
    EXPECT_NEAR(r.fit.tau, 30000.0, 9000.0);
}

TEST(Integration, RamseyFringeAtArtificialDetuning)
{
    using namespace quma::experiments;
    CoherenceConfig cfg;
    // Delays on the 20 ns SSB grid (multiples of 4 cycles) sampling
    // 1.6 periods of a 500 kHz fringe.
    for (int i = 1; i <= 16; ++i)
        cfg.delaysCycles.push_back(static_cast<Cycle>(i) * 40);
    cfg.rounds = 160;
    cfg.artificialDetuningHz = 500.0e3;
    auto r = runRamsey(cfg);
    EXPECT_TRUE(r.run.halted);
    // Fitted fringe frequency within 15% of the detuning (per ns).
    EXPECT_NEAR(r.fit.frequency, 500.0e3 * 1e-9,
                500.0e3 * 1e-9 * 0.15);
}

TEST(Integration, EchoOutlivesRamseyUnderSlowNoise)
{
    using namespace quma::experiments;
    CoherenceConfig cfg = CoherenceConfig::withLinearSweep(8000, 8);
    cfg.rounds = 128;
    cfg.qubitParams.t1Ns = 50000.0;
    cfg.qubitParams.t2Ns = 40000.0;
    // Strong quasi-static noise: Gaussian Ramsey envelope ~ 2.3 us.
    cfg.qubitParams.quasiStaticDetuningSigmaHz = 100.0e3;
    cfg.artificialDetuningHz = 400.0e3;
    auto ramsey = runRamsey(cfg);

    CoherenceConfig echoCfg = cfg;
    echoCfg.artificialDetuningHz = 0.0;
    auto echo = runEcho(echoCfg);

    // The echo refocuses the slow noise. Compare contrast over the
    // second half of the sweep: the Ramsey fringe has collapsed to
    // 1/2 while the echo still returns the qubit to |1>.
    auto tailContrast = [](const std::vector<double> &population) {
        double acc = 0;
        std::size_t n = population.size();
        for (std::size_t i = n / 2; i < n; ++i)
            acc += std::abs(population[i] - 0.5);
        return acc / static_cast<double>(n - n / 2);
    };
    EXPECT_GT(tailContrast(echo.population),
              tailContrast(ramsey.population) + 0.15);
}

} // namespace
} // namespace quma::core
