/**
 * @file
 * Unit tests for the state-vector and density-matrix simulators and
 * the decoherence channels.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/logging.hh"
#include "qsim/channels.hh"
#include "qsim/density.hh"
#include "qsim/statevector.hh"

namespace quma::qsim {
namespace {

constexpr double kPi = std::numbers::pi;

// ------------------------------------------------------------ statevector

TEST(StateVector, StartsInGroundState)
{
    StateVector sv(3);
    EXPECT_EQ(sv.dim(), 8u);
    EXPECT_NEAR(std::abs(sv.amplitude(0) - Complex{1, 0}), 0, 1e-12);
    for (unsigned q = 0; q < 3; ++q)
        EXPECT_DOUBLE_EQ(sv.probabilityOne(q), 0.0);
}

TEST(StateVector, XFlipsTargetQubitOnly)
{
    StateVector sv(2);
    sv.apply1(1, gates::pauliX());
    EXPECT_DOUBLE_EQ(sv.probabilityOne(1), 1.0);
    EXPECT_DOUBLE_EQ(sv.probabilityOne(0), 0.0);
}

TEST(StateVector, HadamardMakesEqualSuperposition)
{
    StateVector sv(1);
    sv.apply1(0, gates::hadamard());
    EXPECT_NEAR(sv.probabilityOne(0), 0.5, 1e-12);
}

TEST(StateVector, CnotEntangles)
{
    StateVector sv(2);
    sv.apply1(1, gates::hadamard());
    sv.apply2(1, 0, gates::cnot());
    // Bell state: both qubits at 50%, amplitudes only on |00>, |11>.
    EXPECT_NEAR(sv.probabilityOne(0), 0.5, 1e-12);
    EXPECT_NEAR(sv.probabilityOne(1), 0.5, 1e-12);
    EXPECT_NEAR(std::abs(sv.amplitude(1)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(sv.amplitude(2)), 0.0, 1e-12);
}

TEST(StateVector, ProjectionCollapsesAndRenormalises)
{
    StateVector sv(2);
    sv.apply1(1, gates::hadamard());
    sv.apply2(1, 0, gates::cnot());
    sv.project(0, true);
    EXPECT_NEAR(sv.probabilityOne(1), 1.0, 1e-12);
    EXPECT_NEAR(std::abs(sv.amplitude(3)), 1.0, 1e-12);
}

TEST(StateVector, ProjectImpossibleOutcomeFails)
{
    setLogQuiet(true);
    StateVector sv(1);
    EXPECT_THROW(sv.project(0, true), quma::FatalError);
    setLogQuiet(false);
}

TEST(StateVector, FidelityAndReset)
{
    StateVector a(1), b(1);
    a.apply1(0, gates::rx(0.3));
    EXPECT_LT(a.fidelityWith(b), 1.0);
    a.reset();
    EXPECT_NEAR(a.fidelityWith(b), 1.0, 1e-12);
    EXPECT_TRUE(a.approxEqual(b));
}

TEST(StateVector, GlobalPhaseIgnoredInApproxEqual)
{
    StateVector a(1), b(1);
    a.apply1(0, gates::rz(1.0)); // phase on |0> only: global here
    EXPECT_TRUE(a.approxEqual(b, 1e-9));
}

// ---------------------------------------------------------- density matrix

TEST(DensityMatrix, PureGroundState)
{
    DensityMatrix rho(2);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(rho.probabilityOne(0), 0.0);
}

TEST(DensityMatrix, UnitaryPreservesTraceAndPurity)
{
    DensityMatrix rho(2);
    rho.apply1(0, gates::rx(1.1));
    rho.apply1(1, gates::hadamard());
    rho.apply2(1, 0, gates::cz());
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
}

TEST(DensityMatrix, MatchesStateVectorProbabilities)
{
    StateVector sv(2);
    DensityMatrix rho(2);
    sv.apply1(0, gates::rx(0.7));
    rho.apply1(0, gates::rx(0.7));
    sv.apply2(1, 0, gates::cnot());
    rho.apply2(1, 0, gates::cnot());
    for (unsigned q = 0; q < 2; ++q)
        EXPECT_NEAR(rho.probabilityOne(q), sv.probabilityOne(q), 1e-12);
}

TEST(DensityMatrix, ProjectionNormalises)
{
    DensityMatrix rho(1);
    rho.apply1(0, gates::hadamard());
    rho.project(0, true);
    EXPECT_NEAR(rho.probabilityOne(0), 1.0, 1e-12);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

TEST(DensityMatrix, FidelityWithPure)
{
    DensityMatrix rho(1);
    rho.apply1(0, gates::pauliX());
    std::vector<Complex> one{{0, 0}, {1, 0}};
    EXPECT_NEAR(rho.fidelityWithPure(one), 1.0, 1e-12);
    std::vector<Complex> zero{{1, 0}, {0, 0}};
    EXPECT_NEAR(rho.fidelityWithPure(zero), 0.0, 1e-12);
}

TEST(DensityMatrix, ResetQubitMapsOneToZero)
{
    DensityMatrix rho(2);
    rho.apply1(0, gates::pauliX());
    rho.apply1(1, gates::pauliX());
    rho.resetQubit(0);
    EXPECT_NEAR(rho.probabilityOne(0), 0.0, 1e-12);
    EXPECT_NEAR(rho.probabilityOne(1), 1.0, 1e-12);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

// --------------------------------------------------------------- channels

TEST(Channels, AmplitudeDampingDecaysExcitedState)
{
    DensityMatrix rho(1);
    rho.apply1(0, gates::pauliX());
    rho.applyKraus1(0, amplitudeDamping(0.3));
    EXPECT_NEAR(rho.probabilityOne(0), 0.7, 1e-12);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

TEST(Channels, PhaseDampingKillsCoherenceOnly)
{
    DensityMatrix rho(1);
    rho.apply1(0, gates::hadamard());
    double before = std::abs(rho.element(0, 1));
    rho.applyKraus1(0, phaseDamping(0.51));
    EXPECT_NEAR(rho.probabilityOne(0), 0.5, 1e-12);
    EXPECT_NEAR(std::abs(rho.element(0, 1)),
                before * std::sqrt(1 - 0.51), 1e-12);
}

TEST(Channels, DepolarizingShrinksBloch)
{
    DensityMatrix rho(1);
    rho.apply1(0, gates::pauliX());
    rho.applyKraus1(0, depolarizing(0.75));
    // Full depolarising at p = 3/4 gives the maximally mixed state.
    EXPECT_NEAR(rho.probabilityOne(0), 0.5, 1e-12);
    EXPECT_NEAR(rho.purity(), 0.5, 1e-12);
}

class IdleChannelTest : public ::testing::TestWithParam<double>
{};

TEST_P(IdleChannelTest, PopulationFollowsT1)
{
    double dt = GetParam();
    const double t1 = 30000.0, t2 = 25000.0;
    DensityMatrix rho(1);
    rho.apply1(0, gates::pauliX());
    rho.applyKraus1(0, idleChannel(dt, t1, t2));
    EXPECT_NEAR(rho.probabilityOne(0), std::exp(-dt / t1), 1e-10);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
}

TEST_P(IdleChannelTest, CoherenceFollowsT2)
{
    double dt = GetParam();
    const double t1 = 30000.0, t2 = 25000.0;
    DensityMatrix rho(1);
    rho.apply1(0, gates::hadamard());
    double before = std::abs(rho.element(0, 1));
    rho.applyKraus1(0, idleChannel(dt, t1, t2));
    EXPECT_NEAR(std::abs(rho.element(0, 1)),
                before * std::exp(-dt / t2), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Durations, IdleChannelTest,
                         ::testing::Values(5.0, 100.0, 1000.0, 20000.0,
                                           200000.0));

TEST(Channels, ChannelComposition)
{
    // Two consecutive idles of dt equal one idle of 2*dt.
    const double t1 = 30000.0, t2 = 25000.0, dt = 500.0;
    DensityMatrix a(1), b(1);
    a.apply1(0, gates::rx(0.8));
    b.apply1(0, gates::rx(0.8));
    a.applyKraus1(0, idleChannel(dt, t1, t2));
    a.applyKraus1(0, idleChannel(dt, t1, t2));
    b.applyKraus1(0, idleChannel(2 * dt, t1, t2));
    for (int r = 0; r < 2; ++r)
        for (int c = 0; c < 2; ++c)
            EXPECT_NEAR(std::abs(a.element(r, c) - b.element(r, c)), 0,
                        1e-10);
}

TEST(Channels, PureDephasingTime)
{
    // 1/Tphi = 1/T2 - 1/(2 T1).
    EXPECT_NEAR(pureDephasingTime(30000.0, 25000.0),
                1.0 / (1.0 / 25000.0 - 1.0 / 60000.0), 1e-6);
    // T2 at the 2*T1 limit: no pure dephasing.
    EXPECT_DOUBLE_EQ(pureDephasingTime(30000.0, 60000.0), 0.0);
}

TEST(Channels, RejectsT2BeyondLimit)
{
    setLogQuiet(true);
    EXPECT_THROW(idleChannel(10.0, 30000.0, 70000.0), quma::FatalError);
    EXPECT_THROW(amplitudeDamping(1.5), quma::FatalError);
    EXPECT_THROW(phaseDamping(-0.1), quma::FatalError);
    setLogQuiet(false);
}

} // namespace
} // namespace quma::qsim
