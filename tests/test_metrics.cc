/**
 * @file
 * Tests of the observability layer: MetricsRegistry semantics, the
 * Prometheus text-exposition invariants (name/label grammar,
 * escaping, cumulative buckets, +Inf == _count, deterministic
 * ordering), the disabled zero-cost mode, the HTTP /metrics
 * endpoint, and the metrics/trace wiring through the runtime.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "net/metrics_endpoint.hh"
#include "net/transport.hh"
#include "runtime/service.hh"

namespace quma {
namespace {

using metrics::MetricsRegistry;

// --- grammar ----------------------------------------------------------------

TEST(MetricsGrammar, MetricNames)
{
    EXPECT_TRUE(MetricsRegistry::validMetricName("quma_jobs_total"));
    EXPECT_TRUE(MetricsRegistry::validMetricName("a:b:c"));
    EXPECT_TRUE(MetricsRegistry::validMetricName("_leading"));
    EXPECT_FALSE(MetricsRegistry::validMetricName(""));
    EXPECT_FALSE(MetricsRegistry::validMetricName("9starts_digit"));
    EXPECT_FALSE(MetricsRegistry::validMetricName("has-dash"));
    EXPECT_FALSE(MetricsRegistry::validMetricName("has space"));
}

TEST(MetricsGrammar, LabelNames)
{
    EXPECT_TRUE(MetricsRegistry::validLabelName("priority"));
    EXPECT_TRUE(MetricsRegistry::validLabelName("_x1"));
    EXPECT_FALSE(MetricsRegistry::validLabelName(""));
    EXPECT_FALSE(MetricsRegistry::validLabelName("9p"));
    EXPECT_FALSE(MetricsRegistry::validLabelName("a:b"));
    // "__" prefix is reserved by the Prometheus ecosystem.
    EXPECT_FALSE(MetricsRegistry::validLabelName("__reserved"));
}

TEST(MetricsGrammar, LabelValueEscaping)
{
    EXPECT_EQ(MetricsRegistry::escapeLabelValue("plain"), "plain");
    EXPECT_EQ(MetricsRegistry::escapeLabelValue("a\\b"), "a\\\\b");
    EXPECT_EQ(MetricsRegistry::escapeLabelValue("a\"b"), "a\\\"b");
    EXPECT_EQ(MetricsRegistry::escapeLabelValue("a\nb"), "a\\nb");
}

TEST(MetricsGrammar, ValueFormatting)
{
    EXPECT_EQ(MetricsRegistry::formatValue(0.0), "0");
    EXPECT_EQ(MetricsRegistry::formatValue(42.0), "42");
    EXPECT_EQ(MetricsRegistry::formatValue(-3.0), "-3");
    EXPECT_EQ(MetricsRegistry::formatValue(0.25), "0.25");
    EXPECT_EQ(MetricsRegistry::formatValue(
                  std::numeric_limits<double>::infinity()),
              "+Inf");
    EXPECT_EQ(MetricsRegistry::formatValue(
                  -std::numeric_limits<double>::infinity()),
              "-Inf");
    EXPECT_EQ(MetricsRegistry::formatValue(
                  std::numeric_limits<double>::quiet_NaN()),
              "NaN");
}

// --- registration semantics -------------------------------------------------

TEST(MetricsRegistry, CounterAccumulates)
{
    MetricsRegistry reg;
    metrics::Counter c = reg.counter("quma_test_total", "help");
    EXPECT_TRUE(c.bound());
    c.inc();
    c.inc(2.5);
    EXPECT_DOUBLE_EQ(c.value(), 3.5);
    // Re-registering the identical series returns the SAME cell.
    metrics::Counter again = reg.counter("quma_test_total", "help");
    again.inc();
    EXPECT_DOUBLE_EQ(c.value(), 4.5);
}

TEST(MetricsRegistry, GaugeSetsAndAdds)
{
    MetricsRegistry reg;
    metrics::Gauge g = reg.gauge("quma_test_depth", "help");
    g.set(7.0);
    g.add(-2.0);
    EXPECT_DOUBLE_EQ(g.value(), 5.0);
}

TEST(MetricsRegistry, KindMismatchIsFatal)
{
    MetricsRegistry reg;
    reg.counter("quma_twice", "help");
    EXPECT_THROW(reg.gauge("quma_twice", "help"), FatalError);
}

TEST(MetricsRegistry, LabelNameSetMismatchIsFatal)
{
    MetricsRegistry reg;
    reg.counter("quma_labeled", "help", {{"priority", "high"}});
    // Same name, different VALUE of the same label: fine (new series).
    reg.counter("quma_labeled", "help", {{"priority", "batch"}});
    // Different label-name set: a schema violation.
    EXPECT_THROW(reg.counter("quma_labeled", "help", {{"type", "x"}}),
                 FatalError);
}

TEST(MetricsRegistry, InvalidNamesAreFatal)
{
    MetricsRegistry reg;
    EXPECT_THROW(reg.counter("bad-name", "help"), FatalError);
    EXPECT_THROW(reg.counter("quma_x", "help", {{"bad-label", "v"}}),
                 FatalError);
    EXPECT_THROW(reg.counter("quma_x", "help", {{"le", "v"}}),
                 FatalError);
}

TEST(MetricsRegistry, HistogramBucketValidation)
{
    MetricsRegistry reg;
    EXPECT_THROW(reg.histogram("quma_h", "help", {1.0, 1.0}),
                 FatalError);
    EXPECT_THROW(reg.histogram("quma_h2", "help", {2.0, 1.0}),
                 FatalError);
    EXPECT_THROW(
        reg.histogram(
            "quma_h3", "help",
            {1.0, std::numeric_limits<double>::infinity()}),
        FatalError);
    // Every series of one family must share the family's bounds.
    reg.histogram("quma_h4", "help", {1.0, 2.0}, {{"k", "a"}});
    EXPECT_THROW(
        reg.histogram("quma_h4", "help", {1.0, 3.0}, {{"k", "b"}}),
        FatalError);
}

// --- exposition format ------------------------------------------------------

TEST(MetricsRender, HelpTypeAndSampleLines)
{
    MetricsRegistry reg;
    reg.counter("quma_events_total", "Things that\nhappened \\ here")
        .inc(3);
    std::string out = reg.renderPrometheus();
    // HELP escapes newline and backslash; TYPE names the kind.
    EXPECT_NE(out.find("# HELP quma_events_total Things "
                       "that\\nhappened \\\\ here\n"),
              std::string::npos);
    EXPECT_NE(out.find("# TYPE quma_events_total counter\n"),
              std::string::npos);
    EXPECT_NE(out.find("quma_events_total 3\n"), std::string::npos);
}

TEST(MetricsRender, LabelsRenderEscaped)
{
    MetricsRegistry reg;
    reg.gauge("quma_g", "help", {{"name", "a\"b\\c"}}).set(1.0);
    std::string out = reg.renderPrometheus();
    EXPECT_NE(out.find("quma_g{name=\"a\\\"b\\\\c\"} 1\n"),
              std::string::npos);
}

TEST(MetricsRender, DeterministicOrdering)
{
    // Families sorted by name, series by label values, regardless of
    // registration order.
    MetricsRegistry reg;
    reg.counter("quma_zzz_total", "z").inc();
    reg.counter("quma_aaa_total", "a").inc();
    reg.gauge("quma_mid", "m", {{"k", "beta"}}).set(1);
    reg.gauge("quma_mid", "m", {{"k", "alpha"}}).set(2);
    std::string out = reg.renderPrometheus();
    std::size_t aaa = out.find("quma_aaa_total");
    std::size_t mid = out.find("quma_mid");
    std::size_t zzz = out.find("quma_zzz_total");
    ASSERT_NE(aaa, std::string::npos);
    ASSERT_NE(mid, std::string::npos);
    ASSERT_NE(zzz, std::string::npos);
    EXPECT_LT(aaa, mid);
    EXPECT_LT(mid, zzz);
    EXPECT_LT(out.find("k=\"alpha\""), out.find("k=\"beta\""));
    // Two renders are byte-identical.
    EXPECT_EQ(out, reg.renderPrometheus());
}

TEST(MetricsRender, HistogramInvariants)
{
    MetricsRegistry reg;
    metrics::Histogram h =
        reg.histogram("quma_lat_seconds", "help", {0.1, 1.0, 10.0});
    h.observe(0.05);  // bucket le=0.1
    h.observe(0.5);   // bucket le=1
    h.observe(0.5);
    h.observe(100.0); // +Inf overflow
    std::string out = reg.renderPrometheus();

    EXPECT_NE(out.find("# TYPE quma_lat_seconds histogram\n"),
              std::string::npos);
    EXPECT_NE(out.find("quma_lat_seconds_bucket{le=\"0.1\"} 1\n"),
              std::string::npos);
    // Buckets are CUMULATIVE.
    EXPECT_NE(out.find("quma_lat_seconds_bucket{le=\"1\"} 3\n"),
              std::string::npos);
    EXPECT_NE(out.find("quma_lat_seconds_bucket{le=\"10\"} 3\n"),
              std::string::npos);
    // +Inf bucket equals _count -- the scrape-consistency invariant.
    EXPECT_NE(out.find("quma_lat_seconds_bucket{le=\"+Inf\"} 4\n"),
              std::string::npos);
    EXPECT_NE(out.find("quma_lat_seconds_count 4\n"),
              std::string::npos);
    EXPECT_NE(out.find("quma_lat_seconds_sum 101.05\n"),
              std::string::npos);
    EXPECT_EQ(h.count(), 4u);
}

TEST(MetricsRender, HistogramLabelsComposeWithLe)
{
    MetricsRegistry reg;
    reg.histogram("quma_hl_seconds", "help", {1.0},
                  {{"priority", "high"}})
        .observe(0.5);
    std::string out = reg.renderPrometheus();
    EXPECT_NE(out.find("quma_hl_seconds_bucket{priority=\"high\","
                       "le=\"1\"} 1\n"),
              std::string::npos);
    EXPECT_NE(out.find("quma_hl_seconds_count{priority=\"high\"} 1\n"),
              std::string::npos);
}

TEST(MetricsRender, CallbackSeries)
{
    MetricsRegistry reg;
    double depth = 12.0;
    reg.gaugeFn("quma_cb_depth", "help", {},
                [&depth] { return depth; });
    EXPECT_NE(reg.renderPrometheus().find("quma_cb_depth 12\n"),
              std::string::npos);
    depth = 3.0; // evaluated at render time, not registration time
    EXPECT_NE(reg.renderPrometheus().find("quma_cb_depth 3\n"),
              std::string::npos);
}

// --- disabled mode ----------------------------------------------------------

TEST(MetricsDisabled, EverythingIsANoOp)
{
    MetricsRegistry reg(/*enabled=*/false);
    metrics::Counter c = reg.counter("quma_x_total", "help");
    metrics::Gauge g = reg.gauge("quma_x", "help");
    metrics::Histogram h = reg.histogram("quma_x_s", "help", {1.0});
    EXPECT_FALSE(c.bound());
    EXPECT_FALSE(g.bound());
    EXPECT_FALSE(h.bound());
    c.inc();
    g.set(5);
    h.observe(0.5);
    EXPECT_DOUBLE_EQ(c.value(), 0.0);
    EXPECT_EQ(reg.renderPrometheus(), "");
    EXPECT_EQ(reg.familyCount(), 0u);
}

TEST(MetricsDisabled, DefaultHandlesAreNoOps)
{
    metrics::Counter c;
    metrics::Histogram h;
    c.inc();
    h.observe(1.0);
    EXPECT_DOUBLE_EQ(c.value(), 0.0);
    EXPECT_EQ(h.count(), 0u);
}

// --- HTTP endpoint ----------------------------------------------------------

namespace {

/** One HTTP exchange over an in-process loopback connection. */
std::string
httpExchange(net::LoopbackListener &listener,
             const std::string &request)
{
    std::unique_ptr<net::ByteStream> conn = listener.connect();
    conn->sendAll(
        reinterpret_cast<const std::uint8_t *>(request.data()),
        request.size());
    std::string response;
    std::uint8_t byte = 0;
    // The endpoint closes after one response: read to EOF.
    while (conn->recvAll(&byte, 1))
        response.push_back(static_cast<char>(byte));
    return response;
}

} // namespace

TEST(MetricsEndpoint, ServesPrometheusExposition)
{
    metrics::MetricsRegistry reg;
    reg.counter("quma_scraped_total", "help").inc(7);
    auto listener = std::make_unique<net::LoopbackListener>();
    net::LoopbackListener *lp = listener.get();
    net::MetricsEndpoint endpoint(reg, std::move(listener));

    std::string response = httpExchange(
        *lp, "GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n");
    EXPECT_NE(response.find("HTTP/1.0 200 OK\r\n"),
              std::string::npos);
    EXPECT_NE(response.find(
                  "Content-Type: text/plain; version=0.0.4; "
                  "charset=utf-8\r\n"),
              std::string::npos);
    EXPECT_NE(response.find("quma_scraped_total 7\n"),
              std::string::npos);
    // Content-Length matches the body exactly.
    std::size_t split = response.find("\r\n\r\n");
    ASSERT_NE(split, std::string::npos);
    std::string body = response.substr(split + 4);
    EXPECT_NE(response.find("Content-Length: " +
                            std::to_string(body.size()) + "\r\n"),
              std::string::npos);
    EXPECT_EQ(endpoint.scrapesServed(), 1u);
    endpoint.stop();
}

TEST(MetricsEndpoint, UnknownPathIs404)
{
    metrics::MetricsRegistry reg;
    auto listener = std::make_unique<net::LoopbackListener>();
    net::LoopbackListener *lp = listener.get();
    net::MetricsEndpoint endpoint(reg, std::move(listener));
    std::string response =
        httpExchange(*lp, "GET /other HTTP/1.0\r\n\r\n");
    EXPECT_NE(response.find("HTTP/1.0 404 Not Found\r\n"),
              std::string::npos);
    EXPECT_EQ(endpoint.scrapesServed(), 0u);
}

TEST(MetricsEndpoint, NonGetIs400)
{
    metrics::MetricsRegistry reg;
    auto listener = std::make_unique<net::LoopbackListener>();
    net::LoopbackListener *lp = listener.get();
    net::MetricsEndpoint endpoint(reg, std::move(listener));
    std::string response =
        httpExchange(*lp, "POST /metrics HTTP/1.0\r\n\r\n");
    EXPECT_NE(response.find("HTTP/1.0 400 Bad Request\r\n"),
              std::string::npos);
}

TEST(MetricsEndpoint, ServesScrapesSerially)
{
    metrics::MetricsRegistry reg;
    reg.counter("quma_serial_total", "help").inc();
    auto listener = std::make_unique<net::LoopbackListener>();
    net::LoopbackListener *lp = listener.get();
    net::MetricsEndpoint endpoint(reg, std::move(listener));
    for (int i = 0; i < 3; ++i) {
        std::string response =
            httpExchange(*lp, "GET /metrics HTTP/1.0\r\n\r\n");
        EXPECT_NE(response.find("quma_serial_total 1\n"),
                  std::string::npos);
    }
    EXPECT_EQ(endpoint.scrapesServed(), 3u);
}

TEST(MetricsEndpoint, NotFoundBodyAndLengthAreExact)
{
    // Regression pin: the 404 carries its hint body with an exact
    // Content-Length and an explicit Connection: close.
    metrics::MetricsRegistry reg;
    auto listener = std::make_unique<net::LoopbackListener>();
    net::LoopbackListener *lp = listener.get();
    net::MetricsEndpoint endpoint(reg, std::move(listener));
    std::string response =
        httpExchange(*lp, "GET /nosuch HTTP/1.0\r\n\r\n");
    EXPECT_NE(response.find("HTTP/1.0 404 Not Found\r\n"),
              std::string::npos);
    EXPECT_NE(response.find("Connection: close\r\n"),
              std::string::npos);
    std::size_t split = response.find("\r\n\r\n");
    ASSERT_NE(split, std::string::npos);
    EXPECT_EQ(response.substr(split + 4), "try GET /metrics\n");
    EXPECT_NE(response.find("Content-Length: 17\r\n"),
              std::string::npos);
}

TEST(MetricsEndpoint, HeadAnswersHeadersOnly)
{
    metrics::MetricsRegistry reg;
    reg.counter("quma_head_total", "help").inc(3);
    auto listener = std::make_unique<net::LoopbackListener>();
    net::LoopbackListener *lp = listener.get();
    net::MetricsEndpoint endpoint(reg, std::move(listener));

    // The GET body's size is what HEAD must state...
    std::string get =
        httpExchange(*lp, "GET /metrics HTTP/1.0\r\n\r\n");
    std::size_t split = get.find("\r\n\r\n");
    ASSERT_NE(split, std::string::npos);
    const std::string body = get.substr(split + 4);

    // ...while sending zero body bytes itself.
    std::string head =
        httpExchange(*lp, "HEAD /metrics HTTP/1.0\r\n\r\n");
    EXPECT_NE(head.find("HTTP/1.0 200 OK\r\n"), std::string::npos);
    EXPECT_NE(head.find("Content-Length: " +
                        std::to_string(body.size()) + "\r\n"),
              std::string::npos);
    split = head.find("\r\n\r\n");
    ASSERT_NE(split, std::string::npos);
    EXPECT_EQ(head.substr(split + 4), "");
    // HEAD routes like GET: both counted as served scrapes.
    EXPECT_EQ(endpoint.scrapesServed(), 2u);
}

TEST(MetricsEndpoint, RegisteredHandlerServesItsPath)
{
    metrics::MetricsRegistry reg;
    auto listener = std::make_unique<net::LoopbackListener>();
    net::LoopbackListener *lp = listener.get();
    net::MetricsEndpoint endpoint(reg, std::move(listener));
    int renders = 0;
    endpoint.addHandler("/healthz", "application/json",
                        [&renders] {
                            ++renders;
                            return std::string(
                                "{\"status\":\"ok\"}\n");
                        });

    std::string response =
        httpExchange(*lp, "GET /healthz HTTP/1.0\r\n\r\n");
    EXPECT_NE(response.find("HTTP/1.0 200 OK\r\n"),
              std::string::npos);
    EXPECT_NE(response.find("Content-Type: application/json\r\n"),
              std::string::npos);
    EXPECT_NE(response.find("{\"status\":\"ok\"}"),
              std::string::npos);
    EXPECT_EQ(renders, 1);

    // HEAD still renders (for the length) but ships no body.
    response = httpExchange(*lp, "HEAD /healthz HTTP/1.0\r\n\r\n");
    std::size_t split = response.find("\r\n\r\n");
    ASSERT_NE(split, std::string::npos);
    EXPECT_EQ(response.substr(split + 4), "");
    EXPECT_EQ(renders, 2);

    // Unregistered paths still 404; /metrics still serves.
    response = httpExchange(*lp, "GET /statusz HTTP/1.0\r\n\r\n");
    EXPECT_NE(response.find("404 Not Found"), std::string::npos);
    response = httpExchange(*lp, "GET /metrics HTTP/1.0\r\n\r\n");
    EXPECT_NE(response.find("HTTP/1.0 200 OK\r\n"),
              std::string::npos);
}

TEST(MetricsEndpoint, ThrowingHandlerIs500AndEndpointSurvives)
{
    metrics::MetricsRegistry reg;
    auto listener = std::make_unique<net::LoopbackListener>();
    net::LoopbackListener *lp = listener.get();
    net::MetricsEndpoint endpoint(reg, std::move(listener));
    endpoint.addHandler("/boom", "text/plain",
                        []() -> std::string {
                            throw std::runtime_error("render died");
                        });
    std::string response =
        httpExchange(*lp, "GET /boom HTTP/1.0\r\n\r\n");
    EXPECT_NE(response.find("HTTP/1.0 500 Internal Server Error"),
              std::string::npos);
    EXPECT_NE(response.find("render died"), std::string::npos);
    // The endpoint keeps serving after the failed render.
    response = httpExchange(*lp, "GET /metrics HTTP/1.0\r\n\r\n");
    EXPECT_NE(response.find("HTTP/1.0 200 OK\r\n"),
              std::string::npos);
}

// --- runtime integration ----------------------------------------------------

namespace {

runtime::JobSpec
sweepJob(std::uint64_t seed)
{
    runtime::JobSpec job;
    job.name = "metrics-sweep";
    job.assembly = R"(
        Pulse {q0}, X180
        Wait 4
        MPG {q0}, 300
        MD {q0}, r7
        Wait 600
        halt
    )";
    job.bins = 1;
    job.seed = seed;
    job.maxCycles = 2'000'000;
    return job;
}

} // namespace

TEST(MetricsIntegration, ServiceFamiliesCoverAllLayers)
{
    metrics::MetricsRegistry reg;
    runtime::ExperimentService service({.workers = 2});
    service.bindMetrics(reg);

    std::vector<runtime::JobId> ids;
    for (int i = 0; i < 4; ++i)
        ids.push_back(service.submit(sweepJob(0x5eed + i)));
    for (runtime::JobId id : ids)
        EXPECT_FALSE(service.await(id).failed());

    std::string out = reg.renderPrometheus();
    // One family per layer proves the whole binding chain.
    EXPECT_NE(out.find("quma_jobs_submitted_total 4\n"),
              std::string::npos);
    EXPECT_NE(out.find("quma_jobs_completed_total 4\n"),
              std::string::npos);
    EXPECT_NE(out.find("quma_pool_acquisitions_total"),
              std::string::npos);
    EXPECT_NE(out.find("quma_cache_program_hits_total"),
              std::string::npos);
    // Latency histogram: per-priority series with the le label, and
    // the normal class saw all four completions.
    EXPECT_NE(out.find("quma_job_latency_seconds_count"
                       "{priority=\"normal\"} 4\n"),
              std::string::npos);
    // Queue drained: depth gauge renders 0.
    EXPECT_NE(out.find("quma_queue_depth 0\n"), std::string::npos);

    runtime::ServiceStats s = service.stats();
    EXPECT_EQ(s.scheduler.completed, 4u);
    EXPECT_EQ(s.cache.programHits + s.cache.programMisses, 4u);
    EXPECT_GE(s.pool.acquisitions, 1u);
}

TEST(MetricsIntegration, DisabledRegistryBindsAsNoOps)
{
    metrics::MetricsRegistry reg(/*enabled=*/false);
    runtime::ExperimentService service({.workers = 1});
    service.bindMetrics(reg);
    EXPECT_FALSE(service.await(service.submit(sweepJob(1))).failed());
    EXPECT_EQ(reg.renderPrometheus(), "");
}

} // namespace
} // namespace quma
