/**
 * @file
 * Unit tests for the gate matrices: unitarity, Pauli algebra, the
 * decompositions the microcode relies on, and two-qubit identities.
 */

#include <gtest/gtest.h>

#include <numbers>

#include "qsim/gates.hh"

namespace quma::qsim {
namespace {

constexpr double kPi = std::numbers::pi;

using gates::cnot;
using gates::cz;
using gates::hadamard;
using gates::identity;
using gates::pauliX;
using gates::pauliY;
using gates::pauliZ;
using gates::raxis;
using gates::rx;
using gates::ry;
using gates::rz;

// Parameterized unitarity sweep over a family of rotations.
class RotationUnitarityTest : public ::testing::TestWithParam<double>
{};

TEST_P(RotationUnitarityTest, AllRotationsUnitary)
{
    double theta = GetParam();
    EXPECT_TRUE(isUnitary(rx(theta)));
    EXPECT_TRUE(isUnitary(ry(theta)));
    EXPECT_TRUE(isUnitary(rz(theta)));
    for (double phi : {0.0, kPi / 4, kPi / 2, 1.1})
        EXPECT_TRUE(isUnitary(raxis(phi, theta)));
}

INSTANTIATE_TEST_SUITE_P(Angles, RotationUnitarityTest,
                         ::testing::Values(0.0, kPi / 2, kPi, -kPi / 2,
                                           0.3, 2.7, -1.9));

TEST(Gates, PauliFromRotations)
{
    EXPECT_TRUE(equalUpToPhase(rx(kPi), pauliX()));
    EXPECT_TRUE(equalUpToPhase(ry(kPi), pauliY()));
    EXPECT_TRUE(equalUpToPhase(rz(kPi), pauliZ()));
}

TEST(Gates, PauliAlgebra)
{
    // X*Y = iZ -> equal up to phase.
    EXPECT_TRUE(equalUpToPhase(matmul(pauliX(), pauliY()), pauliZ()));
    EXPECT_TRUE(equalUpToPhase(matmul(pauliY(), pauliX()), pauliZ()));
    // X^2 = I.
    EXPECT_TRUE(equalUpToPhase(matmul(pauliX(), pauliX()), identity()));
    EXPECT_TRUE(equalUpToPhase(matmul(pauliZ(), pauliZ()), identity()));
}

TEST(Gates, RaxisMatchesRxRy)
{
    for (double theta : {0.1, kPi / 2, kPi, 2.0}) {
        EXPECT_TRUE(equalUpToPhase(raxis(0.0, theta), rx(theta)));
        EXPECT_TRUE(equalUpToPhase(raxis(kPi / 2, theta), ry(theta)));
    }
}

TEST(Gates, RaxisPhaseShiftTurnsXIntoY)
{
    // The paper's 5 ns / 50 MHz example: a 90-degree axis shift maps
    // an x rotation onto a y rotation.
    EXPECT_TRUE(
        equalUpToPhase(raxis(kPi / 2, kPi / 2), ry(kPi / 2)));
    EXPECT_TRUE(equalUpToPhase(raxis(kPi, kPi), rx(-kPi)));
}

TEST(Gates, RotationComposition)
{
    // Rx(a) * Rx(b) = Rx(a + b).
    EXPECT_TRUE(equalUpToPhase(matmul(rx(0.4), rx(0.8)), rx(1.2)));
    EXPECT_TRUE(equalUpToPhase(matmul(ry(1.0), ry(-1.0)), identity()));
}

TEST(Gates, HadamardIdentities)
{
    // H = X * Ry(pi/2) up to phase (the u-op sequence table uses
    // Y90 then X180 temporally).
    EXPECT_TRUE(
        equalUpToPhase(matmul(pauliX(), ry(kPi / 2)), hadamard()));
    // H Z H = X.
    Mat2 hzh = matmul(hadamard(), matmul(pauliZ(), hadamard()));
    EXPECT_TRUE(equalUpToPhase(hzh, pauliX()));
    // H^2 = I.
    EXPECT_TRUE(
        equalUpToPhase(matmul(hadamard(), hadamard()), identity()));
}

TEST(Gates, AdjointInvertsRotation)
{
    Mat2 u = raxis(0.7, 1.3);
    EXPECT_TRUE(equalUpToPhase(matmul(u, adjoint(u)), identity()));
}

TEST(Gates, KronBuildsTwoQubitOps)
{
    Mat4 ix = kron(identity(), pauliX());
    // |00> -> |01>: row 1, column 0 (high qubit untouched).
    EXPECT_NEAR(std::abs(ix[1 * 4 + 0] - Complex{1, 0}), 0.0, 1e-12);
    Mat4 xi = kron(pauliX(), identity());
    EXPECT_NEAR(std::abs(xi[2 * 4 + 0] - Complex{1, 0}), 0.0, 1e-12);
}

TEST(Gates, CnotFromCz)
{
    // Paper Algorithm 2: CNOT(control=high, target=low) =
    // (I (x) Ry(pi/2)) * CZ * (I (x) Ry(-pi/2)).
    Mat4 pre = kron(identity(), ry(-kPi / 2));
    Mat4 post = kron(identity(), ry(kPi / 2));
    Mat4 composed = matmul(post, matmul(cz(), pre));
    EXPECT_TRUE(equalUpToPhase(composed, cnot()));
}

TEST(Gates, CzIsSymmetric)
{
    // CZ is invariant under qubit exchange (swap conjugation).
    Mat4 s = gates::swap();
    Mat4 conj = matmul(s, matmul(cz(), s));
    EXPECT_TRUE(equalUpToPhase(conj, cz()));
}

TEST(Gates, CnotActsOnBasis)
{
    Mat4 c = cnot();
    // |10> (control=1) -> |11>.
    EXPECT_NEAR(std::abs(c[3 * 4 + 2] - Complex{1, 0}), 0.0, 1e-12);
    // |00> -> |00>.
    EXPECT_NEAR(std::abs(c[0 * 4 + 0] - Complex{1, 0}), 0.0, 1e-12);
}

TEST(Gates, EqualUpToPhaseDetectsDifference)
{
    EXPECT_FALSE(equalUpToPhase(pauliX(), pauliY()));
    EXPECT_FALSE(equalUpToPhase(rx(0.5), rx(0.6)));
    // Global phase is ignored.
    Mat2 phased = pauliX();
    for (auto &v : phased)
        v *= Complex{0, 1};
    EXPECT_TRUE(equalUpToPhase(phased, pauliX()));
}

TEST(Gates, ZFromXYTemporalSequence)
{
    // SeqZ = ([0, X180]; [4, Y180]): temporal X then Y equals
    // Y * X = Z up to phase (paper section 5.3.2).
    Mat2 seq = matmul(pauliY(), pauliX());
    EXPECT_TRUE(equalUpToPhase(seq, pauliZ()));
}

TEST(Gates, Z90TemporalSequences)
{
    // Z90: temporal Xm90, Y90, X90 -> Rz(pi/2) up to phase.
    Mat2 z90 = matmul(rx(kPi / 2), matmul(ry(kPi / 2), rx(-kPi / 2)));
    EXPECT_TRUE(equalUpToPhase(z90, rz(kPi / 2)));
    // Zm90: temporal X90, Y90, Xm90 -> Rz(-pi/2).
    Mat2 zm90 = matmul(rx(-kPi / 2), matmul(ry(kPi / 2), rx(kPi / 2)));
    EXPECT_TRUE(equalUpToPhase(zm90, rz(-kPi / 2)));
}

} // namespace
} // namespace quma::qsim
