/**
 * @file
 * Second-tier machine tests: the paper's load/add/store result
 * accumulation (Table 5 QIS listing), backpressure safety,
 * multi-AWG routing, randomized encode/assembler properties, and
 * timing-controller property sweeps.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"
#include "isa/disassembler.hh"
#include "isa/encoding.hh"
#include "quma/machine.hh"

namespace quma::core {
namespace {

/**
 * Paper Table 5 (QIS column): accumulate measurement results into
 * data memory across rounds with Load/Add/Store -- the hierarchical
 * averaging loop of Algorithm 1.
 */
TEST(MachineExtra, AccumulateResultsInDataMemory)
{
    MachineConfig cfg;
    cfg.qubits[0].readout.noiseSigma = 40.0;
    QumaMachine m(cfg);
    m.loadAssembly(R"(
        mov r1, 0
        mov r2, 10            # rounds
        mov r3, 0             # ResultMemAddr
        mov r15, 40000
        Outer_Loop:
        QNopReg r15
        Apply X180, q0
        Measure q0, r7
        Wait 600
        load r9, r3[0]
        add r9, r9, r7
        store r9, r3[0]
        addi r1, r1, 1
        bne r1, r2, Outer_Loop
        halt
    )");
    auto r = m.run(20'000'000);
    EXPECT_TRUE(r.halted);
    // Every X180 shot should read |1> except rare readout decay.
    std::int64_t sum = m.execController().readDataMemory(0);
    EXPECT_GE(sum, 8);
    EXPECT_LE(sum, 10);
}

TEST(MachineExtra, BackpressureThrottlesWithoutViolations)
{
    // Tiny queues force constant dispatch retries; with adequate
    // slack in the program the output timing must stay clean --
    // capacity throttles the pipeline, it never corrupts timing.
    MachineConfig cfg;
    cfg.timing.timingQueueCapacity = 2;
    cfg.timing.pulseQueueCapacity = 2;
    cfg.timing.mpgQueueCapacity = 2;
    cfg.timing.mdQueueCapacity = 2;
    cfg.qmbDepth = 4;
    QumaMachine m(cfg);
    std::string src = "mov r15, 40000\nQNopReg r15\n";
    for (int i = 0; i < 30; ++i) {
        src += "Pulse {q0}, X90\nWait 100\n";
    }
    src += "Wait 600\nhalt";
    m.loadAssembly(src);
    auto r = m.run(10'000'000);
    EXPECT_TRUE(r.halted);
    EXPECT_TRUE(r.violations.clean());
    EXPECT_GT(m.execController().stats().dispatchRetries, 0u);
}

/**
 * Regression guard for the machine pool: reset() must clear the
 * timing event-queue saturation counters (pushFailed, high-water)
 * along with the exec/pipeline counters, or a pooled machine would
 * leak one job's backpressure statistics into the next job's
 * stats() -- and into any scheduler admission policy reading them.
 */
TEST(MachineExtra, ResetClearsQueueSaturationCounters)
{
    MachineConfig cfg;
    cfg.timing.timingQueueCapacity = 2;
    cfg.timing.pulseQueueCapacity = 2;
    QumaMachine m(cfg);
    std::string src = "mov r15, 40000\nQNopReg r15\n";
    for (int i = 0; i < 30; ++i)
        src += "Pulse {q0}, X90\nWait 100\n";
    src += "Wait 600\nhalt";
    m.loadAssembly(src);
    ASSERT_TRUE(m.run(10'000'000).halted);

    MachineStats before = m.stats();
    ASSERT_GT(before.queues.totalPushFailed(), 0u);
    ASSERT_GT(before.queues.timing.highWater, 0u);
    ASSERT_GT(before.microInstsIssued, 0u);

    m.reset();
    MachineStats after = m.stats();
    EXPECT_EQ(after.queues.totalPushFailed(), 0u);
    EXPECT_EQ(after.queues.timing.highWater, 0u);
    EXPECT_EQ(after.queues.mpg.pushFailed, 0u);
    for (const auto &q : after.queues.pulse) {
        EXPECT_EQ(q.pushFailed, 0u);
        EXPECT_EQ(q.highWater, 0u);
    }
    for (const auto &q : after.queues.md) {
        EXPECT_EQ(q.pushFailed, 0u);
        EXPECT_EQ(q.highWater, 0u);
    }
    EXPECT_EQ(after.exec.classicalExecuted, 0u);
    EXPECT_EQ(after.exec.dispatchRetries, 0u);
    EXPECT_EQ(after.microInstsIssued, 0u);

    // And the seeded reset used by the runtime clears them too.
    m.loadAssembly(src);
    ASSERT_TRUE(m.run(10'000'000).halted);
    m.reset(0x1234, 0x5678);
    EXPECT_EQ(m.stats().queues.totalPushFailed(), 0u);
    EXPECT_EQ(m.stats().queues.timing.highWater, 0u);
}

TEST(MachineExtra, HorizontalPulseRoutesAcrossAwgs)
{
    MachineConfig cfg;
    cfg.qubits.assign(3, qsim::paperQubitParams());
    cfg.qubits[1].freqHz = 6.2e9;
    cfg.qubits[2].freqHz = 6.0e9;
    cfg.numAwgs = 3;
    cfg.driveAwg = {0, 1, 2};
    cfg.traceEnabled = true;
    QumaMachine m(cfg);
    m.loadAssembly(R"(
        Wait 100
        Pulse ({q0, q1, q2}, X180)
        Wait 600
        halt
    )");
    auto r = m.run(1'000'000);
    EXPECT_TRUE(r.violations.clean());
    // One micro-op fire per AWG, all at the same TD.
    const auto &uops = m.trace().uopFires();
    ASSERT_EQ(uops.size(), 3u);
    EXPECT_EQ(uops[0].td, uops[1].td);
    EXPECT_EQ(uops[1].td, uops[2].td);
    bool sawAwg[3] = {false, false, false};
    for (const auto &u : uops)
        sawAwg[u.awg] = true;
    EXPECT_TRUE(sawAwg[0] && sawAwg[1] && sawAwg[2]);
    // Every qubit flipped.
    for (unsigned q = 0; q < 3; ++q)
        EXPECT_GT(m.chip().probabilityOne(q), 0.99);
}

TEST(MachineExtra, DispatchOrderPreservedAcrossExpansion)
{
    // QIS instructions expanding to different lengths must still
    // produce monotonically ordered timing labels.
    MachineConfig cfg;
    cfg.traceEnabled = true;
    QumaMachine m(cfg);
    m.loadAssembly(R"(
        Wait 50
        Apply Z90, q0
        Apply X180, q0
        Apply H, q0
        Measure q0, r7
        Wait 600
        halt
    )");
    auto r = m.run(1'000'000);
    EXPECT_TRUE(r.violations.clean());
    const auto &cws = m.trace().codewords();
    // Z90 = 3 codewords, X180 = 1, H = 2.
    ASSERT_EQ(cws.size(), 6u);
    for (std::size_t i = 1; i < cws.size(); ++i)
        EXPECT_GT(cws[i].td, cws[i - 1].td);
}

// ------------------------------------------- randomized property tests

isa::Instruction
randomInstruction(Rng &rng)
{
    switch (rng.uniformInt(0, 9)) {
      case 0:
        return isa::Instruction::mov(
            static_cast<RegIndex>(rng.uniformInt(0, 31)),
            static_cast<std::int64_t>(rng.uniformInt(0, 1 << 30)) -
                (1 << 29));
      case 1:
        return isa::Instruction::add(
            static_cast<RegIndex>(rng.uniformInt(0, 31)),
            static_cast<RegIndex>(rng.uniformInt(0, 31)),
            static_cast<RegIndex>(rng.uniformInt(0, 31)));
      case 2:
        return isa::Instruction::load(
            static_cast<RegIndex>(rng.uniformInt(0, 31)),
            static_cast<RegIndex>(rng.uniformInt(0, 31)),
            static_cast<std::int64_t>(rng.uniformInt(0, 4095)));
      case 3:
        return isa::Instruction::bne(
            static_cast<RegIndex>(rng.uniformInt(0, 31)),
            static_cast<RegIndex>(rng.uniformInt(0, 31)),
            static_cast<std::int64_t>(rng.uniformInt(0, 10000)));
      case 4:
        return isa::Instruction::wait(
            static_cast<std::int64_t>(rng.uniformInt(1, 100000)));
      case 5: {
        std::vector<isa::PulseSlot> slots;
        auto n = rng.uniformInt(1, isa::kMaxPulseSlots);
        for (std::uint64_t i = 0; i < n; ++i)
            slots.push_back(
                {static_cast<QubitMask>(rng.uniformInt(1, 255)),
                 static_cast<std::uint8_t>(rng.uniformInt(0, 12))});
        return isa::Instruction::pulse(std::move(slots));
      }
      case 6:
        return isa::Instruction::mpg(
            static_cast<QubitMask>(rng.uniformInt(1, 0xffff)),
            static_cast<std::int64_t>(rng.uniformInt(1, 1000)));
      case 7:
        return isa::Instruction::md(
            static_cast<QubitMask>(rng.uniformInt(1, 0xffff)),
            static_cast<RegIndex>(rng.uniformInt(0, 31)));
      case 8:
        return isa::Instruction::apply(
            static_cast<std::uint8_t>(rng.uniformInt(0, 12)),
            static_cast<QubitMask>(rng.uniformInt(1, 0xffff)));
      default:
        return isa::Instruction::waitReg(
            static_cast<RegIndex>(rng.uniformInt(0, 31)));
    }
}

class RandomizedEncoding : public ::testing::TestWithParam<unsigned>
{};

TEST_P(RandomizedEncoding, EncodeDecodeIdentity)
{
    Rng rng(GetParam());
    for (int i = 0; i < 500; ++i) {
        auto inst = randomInstruction(rng);
        EXPECT_EQ(isa::decode(isa::encode(inst)), inst)
            << isa::toString(inst);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedEncoding,
                         ::testing::Values(1u, 2u, 3u, 4u));

class RandomizedDisassembly : public ::testing::TestWithParam<unsigned>
{};

TEST_P(RandomizedDisassembly, AssembleDisassembleIdentity)
{
    Rng rng(100 + GetParam());
    isa::Program prog;
    for (int i = 0; i < 60; ++i) {
        auto inst = randomInstruction(rng);
        if (isa::isBranch(inst.op))
            inst.imm = static_cast<std::int64_t>(
                rng.uniformInt(0, 59)); // keep targets in range
        prog.push(inst);
    }
    isa::Disassembler dis;
    isa::Assembler as;
    isa::Program again = as.assemble(dis.render(prog));
    ASSERT_EQ(again.size(), prog.size());
    for (std::size_t i = 0; i < prog.size(); ++i)
        EXPECT_EQ(again.at(i), prog.at(i)) << "instruction " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedDisassembly,
                         ::testing::Values(1u, 2u, 3u));

class RandomizedTimingProperty
    : public ::testing::TestWithParam<unsigned>
{};

TEST_P(RandomizedTimingProperty, FiresAtCumulativeIntervals)
{
    // Property: label k fires exactly at the cumulative sum of the
    // first k intervals, for any interval sequence.
    Rng rng(200 + GetParam());
    timing::TimingController tcu;
    std::vector<std::pair<Cycle, TimingLabel>> fires;
    tcu.setFireObserver([&](Cycle td, TimingLabel label) {
        fires.emplace_back(td, label);
    });
    std::vector<Cycle> intervals;
    Cycle total = 0;
    for (int k = 0; k < 40; ++k) {
        Cycle iv = rng.uniformInt(1, 5000);
        intervals.push_back(iv);
        total += iv;
        tcu.pushTimePoint(iv, static_cast<TimingLabel>(k + 1));
    }
    tcu.start(0);
    tcu.advanceTo(total);
    ASSERT_EQ(fires.size(), 41u); // implicit label 0 + 40
    Cycle cum = 0;
    for (int k = 0; k < 40; ++k) {
        cum += intervals[k];
        EXPECT_EQ(fires[k + 1].first, cum);
        EXPECT_EQ(fires[k + 1].second,
                  static_cast<TimingLabel>(k + 1));
    }
    EXPECT_TRUE(tcu.violations().clean());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedTimingProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

} // namespace
} // namespace quma::core
