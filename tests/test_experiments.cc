/**
 * @file
 * Unit tests for the experiment library: AllXY tables, the Clifford
 * group, RB sequence generation, and small end-to-end experiment
 * runs through the full machine.
 */

#include <gtest/gtest.h>

#include <numbers>

#include "common/logging.hh"
#include "experiments/allxy.hh"
#include "experiments/clifford.hh"
#include "experiments/rb.hh"

namespace quma::experiments {
namespace {

// ------------------------------------------------------------------ AllXY

TEST(Allxy, TwentyOnePairsWithPaperLabels)
{
    const auto &pairs = allxyPairs();
    ASSERT_EQ(pairs.size(), 21u);
    EXPECT_EQ(pairs[0].label, "II");
    EXPECT_EQ(pairs[1].label, "XX");
    EXPECT_EQ(pairs[17].label, "XI");
    EXPECT_EQ(pairs[20].label, "yy");
}

TEST(Allxy, IdealSignatureIsTheStaircase)
{
    // 5 pairs at 0, 12 at 1/2, 4 at 1 (paper §4.1), doubled.
    auto sig = idealAllxySignature();
    ASSERT_EQ(sig.size(), 42u);
    int zeros = 0, halves = 0, ones = 0;
    for (double v : sig) {
        if (v == 0.0)
            ++zeros;
        else if (v == 0.5)
            ++halves;
        else if (v == 1.0)
            ++ones;
    }
    EXPECT_EQ(zeros, 10);
    EXPECT_EQ(halves, 24);
    EXPECT_EQ(ones, 8);
    // Monotone staircase.
    for (std::size_t i = 1; i < sig.size(); ++i)
        EXPECT_GE(sig[i], sig[i - 1]);
}

TEST(Allxy, ProgramShape)
{
    auto prog = buildAllxyProgram(25600, 0);
    EXPECT_EQ(prog.repetitions(), 25600u);
    // 42 measured points, 4 operations each.
    EXPECT_EQ(prog.kernels().at(0).operations().size(), 42u * 4);
}

TEST(Allxy, RescaleUsesCalibrationPoints)
{
    std::vector<double> raw(42, 0.0);
    for (std::size_t i = 0; i < 42; ++i)
        raw[i] = -900.0; // everything reads |0>
    raw[34] = raw[35] = raw[36] = raw[37] = 900.0; // XI, YI read |1>
    auto f = rescaleAllxy(raw);
    EXPECT_NEAR(f[0], 0.0, 1e-12);
    EXPECT_NEAR(f[34], 1.0, 1e-12);
}

TEST(Allxy, RescaleRejectsDegenerateCalibration)
{
    setLogQuiet(true);
    std::vector<double> raw(42, 1.0);
    EXPECT_THROW(rescaleAllxy(raw), FatalError);
    setLogQuiet(false);
}

TEST(Allxy, EndToEndStaircase)
{
    AllxyConfig cfg;
    cfg.rounds = 96;
    auto r = runAllxy(cfg);
    EXPECT_TRUE(r.run.halted);
    EXPECT_TRUE(r.run.violations.clean());
    ASSERT_EQ(r.fidelity.size(), 42u);
    // The staircase shape with statistical tolerance.
    EXPECT_LT(r.deviation, 0.12);
    EXPECT_NEAR(r.fidelity[2], 0.0, 0.15);  // XX
    EXPECT_NEAR(r.fidelity[14], 0.5, 0.2);  // xy
    EXPECT_NEAR(r.fidelity[40], 1.0, 0.15); // yy
}

TEST(Allxy, AmplitudeErrorDistortsMiddleSteps)
{
    AllxyConfig good;
    good.rounds = 96;
    AllxyConfig bad = good;
    bad.amplitudeError = 0.15;
    auto g = runAllxy(good);
    auto b = runAllxy(bad);
    EXPECT_GT(b.deviation, g.deviation * 1.5);
}

TEST(Allxy, TimingSkewProducesDistinctSignature)
{
    // The paper's 5 ns example: delaying the SECOND pulse of each
    // pair by one cycle rotates its axis 90 degrees relative to the
    // first (x becomes y), wrecking the staircase.
    AllxyConfig skew;
    skew.rounds = 96;
    skew.interPulseSkewCycles = 1;
    auto r = runAllxy(skew);
    EXPECT_GT(r.deviation, 0.1);
}

// --------------------------------------------------------------- Clifford

TEST(Clifford, GroupHas24Elements)
{
    const auto &g = CliffordGroup::instance();
    EXPECT_EQ(g.size(), 24u);
}

TEST(Clifford, ClosedUnderComposition)
{
    const auto &g = CliffordGroup::instance();
    for (std::size_t a = 0; a < g.size(); ++a)
        for (std::size_t b = 0; b < g.size(); ++b)
            EXPECT_NE(g.compose(a, b), CliffordGroup::npos);
}

TEST(Clifford, InversesComposeToIdentity)
{
    const auto &g = CliffordGroup::instance();
    for (std::size_t a = 0; a < g.size(); ++a) {
        std::size_t inv = g.inverseOf(a);
        EXPECT_EQ(g.compose(a, inv), g.identityIndex());
        EXPECT_EQ(g.compose(inv, a), g.identityIndex());
    }
}

TEST(Clifford, DecompositionsImplementTheirMatrices)
{
    const double kPi = std::numbers::pi;
    const auto &g = CliffordGroup::instance();
    auto nameToMat = [&](const std::string &n) -> qsim::Mat2 {
        if (n == "X180")
            return qsim::gates::rx(kPi);
        if (n == "X90")
            return qsim::gates::rx(kPi / 2);
        if (n == "Xm90")
            return qsim::gates::rx(-kPi / 2);
        if (n == "Y180")
            return qsim::gates::ry(kPi);
        if (n == "Y90")
            return qsim::gates::ry(kPi / 2);
        return qsim::gates::ry(-kPi / 2); // Ym90
    };
    for (std::size_t i = 0; i < g.size(); ++i) {
        qsim::Mat2 u = qsim::gates::identity();
        for (const auto &n : g.element(i).gateNames)
            u = qsim::matmul(nameToMat(n), u);
        EXPECT_TRUE(qsim::equalUpToPhase(u, g.element(i).matrix, 1e-9))
            << "element " << i;
    }
}

TEST(Clifford, AverageGateCountIsMinimal)
{
    // BFS finds MINIMAL decompositions over {±90, 180 x/y}:
    // 1 identity (0 gates) + 6 singles + 13 doubles + 4 triples =
    // 44 primitives / 24 elements. This slightly beats the 1.875
    // average of the conventional fixed decomposition tables.
    EXPECT_NEAR(CliffordGroup::instance().averageGateCount(),
                44.0 / 24.0, 1e-12);
}

TEST(Clifford, DecompositionsAreMinimalDepth)
{
    const auto &g = CliffordGroup::instance();
    for (std::size_t i = 0; i < g.size(); ++i)
        EXPECT_LE(g.element(i).gates.size(), 3u);
}

// --------------------------------------------------------------------- RB

class RbSequenceTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(RbSequenceTest, SequencePlusRecoveryIsIdentity)
{
    const double kPi = std::numbers::pi;
    Rng rng(17 + GetParam());
    auto gates = drawRbSequence(GetParam(), rng);
    qsim::Mat2 u = qsim::gates::identity();
    for (const auto &n : gates) {
        qsim::Mat2 m;
        if (n == "X180")
            m = qsim::gates::rx(kPi);
        else if (n == "X90")
            m = qsim::gates::rx(kPi / 2);
        else if (n == "Xm90")
            m = qsim::gates::rx(-kPi / 2);
        else if (n == "Y180")
            m = qsim::gates::ry(kPi);
        else if (n == "Y90")
            m = qsim::gates::ry(kPi / 2);
        else
            m = qsim::gates::ry(-kPi / 2);
        u = qsim::matmul(m, u);
    }
    EXPECT_TRUE(
        qsim::equalUpToPhase(u, qsim::gates::identity(), 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Lengths, RbSequenceTest,
                         ::testing::Values(0u, 1u, 2u, 5u, 16u, 64u));

TEST(Rb, SurvivalDecaysWithLength)
{
    RbConfig cfg;
    cfg.lengths = {2, 16, 48};
    cfg.seedsPerLength = 3;
    cfg.rounds = 64;
    // Shorten coherence so the decay is visible at small m.
    cfg.qubitParams.t1Ns = 4000.0;
    cfg.qubitParams.t2Ns = 3000.0;
    auto r = runRb(cfg);
    EXPECT_TRUE(r.run.halted);
    ASSERT_EQ(r.survival.size(), 3u);
    EXPECT_GT(r.survival[0], r.survival[2] + 0.05);
    EXPECT_GT(r.p, 0.0);
    EXPECT_LT(r.p, 1.0);
    EXPECT_GT(r.errorPerClifford, 0.0);
}

} // namespace
} // namespace quma::experiments
