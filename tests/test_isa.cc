/**
 * @file
 * Unit tests for the instruction set: encoding round trips, the
 * assembler (including the paper's Algorithm 3 syntax), the
 * disassembler round-trip property, and the name tables.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/assembler.hh"
#include "isa/disassembler.hh"
#include "isa/encoding.hh"
#include "isa/nametable.hh"

namespace quma::isa {
namespace {

// ---------------------------------------------------------------- opcodes

TEST(Opcodes, MnemonicRoundTrip)
{
    for (unsigned v = 0; v < static_cast<unsigned>(Opcode::NumOpcodes);
         ++v) {
        auto op = static_cast<Opcode>(v);
        std::string m = mnemonic(op);
        if (m == "<invalid>")
            continue;
        auto back = opcodeFromMnemonic(m);
        ASSERT_TRUE(back.has_value()) << m;
        EXPECT_EQ(*back, op);
    }
}

TEST(Opcodes, LookupIsCaseInsensitive)
{
    EXPECT_EQ(opcodeFromMnemonic("WAIT"), Opcode::QWait);
    EXPECT_EQ(opcodeFromMnemonic("qnopreg"), Opcode::QWaitReg);
    EXPECT_EQ(opcodeFromMnemonic("mpg"), Opcode::Mpg);
    EXPECT_FALSE(opcodeFromMnemonic("frobnicate").has_value());
}

TEST(Opcodes, QuantumClassification)
{
    EXPECT_TRUE(isQuantum(Opcode::QWait));
    EXPECT_TRUE(isQuantum(Opcode::Pulse));
    EXPECT_TRUE(isQuantum(Opcode::Apply));
    EXPECT_FALSE(isQuantum(Opcode::Add));
    EXPECT_FALSE(isQuantum(Opcode::Bne));
    EXPECT_TRUE(isQis(Opcode::Apply));
    EXPECT_TRUE(isQis(Opcode::Cnot));
    EXPECT_FALSE(isQis(Opcode::Pulse));
    EXPECT_TRUE(isBranch(Opcode::Br));
    EXPECT_FALSE(isBranch(Opcode::Halt));
}

// --------------------------------------------------------------- encoding

class EncodingRoundTrip
    : public ::testing::TestWithParam<Instruction>
{};

TEST_P(EncodingRoundTrip, DecodeInvertsEncode)
{
    const Instruction &inst = GetParam();
    EXPECT_EQ(decode(encode(inst)), inst);
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, EncodingRoundTrip,
    ::testing::Values(
        Instruction::nop(), Instruction::halt(),
        Instruction::mov(15, 40000), Instruction::mov(1, -7),
        Instruction::add(3, 4, 5), Instruction::sub(31, 30, 29),
        Instruction::addi(1, 1, 1), Instruction::addi(2, 3, -100),
        Instruction::load(9, 3, 0), Instruction::load(9, 3, 21),
        Instruction::store(9, 3, 1), Instruction::store(7, 0, -4),
        Instruction::beq(1, 2, 100), Instruction::bne(1, 2, 4),
        Instruction::br(0), Instruction::wait(40000),
        Instruction::wait(4), Instruction::waitReg(15),
        Instruction::pulse1(0x4, 1),
        Instruction::pulse({{0x1, 2}, {0x2, 5}}),
        Instruction::pulse({{0x1, 0}, {0x2, 1}, {0x4, 6}}),
        Instruction::mpg(0x4, 300), Instruction::mpg(0xff, 1),
        Instruction::md(0x4, 7), Instruction::md(0x3, 0),
        Instruction::apply(1, 0x4), Instruction::apply(12, 0xffff),
        Instruction::measure(0x4, 7), Instruction::cnot(1, 2)));

TEST(Encoding, RejectsOversizedFields)
{
    setLogQuiet(true);
    Instruction tooWide = Instruction::mov(1, 0x1'0000'0000LL);
    EXPECT_THROW(encode(tooWide), quma::FatalError);
    Instruction bigMask = Instruction::pulse1(0x100, 1);
    EXPECT_THROW(encode(bigMask), quma::FatalError);
    setLogQuiet(false);
}

TEST(Encoding, RejectsInvalidOpcodeWord)
{
    setLogQuiet(true);
    // Opcode 63 is far outside the defined range.
    EXPECT_THROW(decode(~std::uint64_t{0}), quma::FatalError);
    // Opcode 20 falls in the reserved gap between Halt and QWait.
    EXPECT_THROW(decode(std::uint64_t{20} << 58), quma::FatalError);
    setLogQuiet(false);
}

TEST(Encoding, BatchRoundTrip)
{
    std::vector<Instruction> prog{
        Instruction::mov(15, 40000), Instruction::waitReg(15),
        Instruction::pulse1(0x1, 1), Instruction::wait(4),
        Instruction::mpg(0x1, 300), Instruction::md(0x1, 7),
        Instruction::halt()};
    EXPECT_EQ(decodeAll(encodeAll(prog)), prog);
}

// -------------------------------------------------------------- nametable

TEST(NameTable, StandardUopsMatchTable1)
{
    auto t = NameTable::standardUops();
    // Paper Table 1 codeword assignments.
    EXPECT_EQ(t.idOf("I"), 0);
    EXPECT_EQ(t.idOf("X180"), 1);
    EXPECT_EQ(t.idOf("X90"), 2);
    EXPECT_EQ(t.idOf("Xm90"), 3);
    EXPECT_EQ(t.idOf("Y180"), 4);
    EXPECT_EQ(t.idOf("Y90"), 5);
    EXPECT_EQ(t.idOf("Ym90"), 6);
    EXPECT_EQ(t.nameOf(1), "X180");
}

TEST(NameTable, CaseInsensitiveLookup)
{
    auto t = NameTable::standardUops();
    EXPECT_EQ(t.idOf("x180"), 1);
    EXPECT_EQ(t.idOf("XM90"), 3);
    EXPECT_FALSE(t.idOf("nope").has_value());
}

TEST(NameTable, RejectsDuplicates)
{
    setLogQuiet(true);
    NameTable t;
    t.define("A", 1);
    EXPECT_THROW(t.define("a", 2), quma::FatalError);
    EXPECT_THROW(t.define("B", 1), quma::FatalError);
    setLogQuiet(false);
}

TEST(NameTable, EntriesSortedById)
{
    auto entries = NameTable::standardUops().entries();
    for (std::size_t i = 1; i < entries.size(); ++i)
        EXPECT_LT(entries[i - 1].second, entries[i].second);
}

// -------------------------------------------------------------- assembler

TEST(Assembler, PaperAlgorithm3Snippet)
{
    Assembler as;
    Program p = as.assemble(R"(
        mov r15 , 40000 # 200 us
        mov r1, 0 # loop counter
        mov r2, 25600 # number of averages
        Outer_Loop:
        QNopReg r15 # Identity , Identity
        Pulse {q2}, I
        Wait 4
        Pulse {q2}, I
        Wait 4
        MPG {q2}, 300
        MD {q2}
        addi r1, r1, 1
        bne r1, r2, Outer_Loop
    )");
    ASSERT_EQ(p.size(), 12u);
    EXPECT_EQ(p.at(0), Instruction::mov(15, 40000));
    EXPECT_EQ(p.at(3), Instruction::waitReg(15));
    EXPECT_EQ(p.at(4), Instruction::pulse1(0x4, 0));
    EXPECT_EQ(p.at(8), Instruction::mpg(0x4, 300));
    EXPECT_EQ(p.at(9), Instruction::md(0x4, 0));
    EXPECT_EQ(p.at(11), Instruction::bne(1, 2, 3));
    EXPECT_EQ(p.labelTarget("Outer_Loop"), 3u);
}

TEST(Assembler, MultiSlotPulse)
{
    Assembler as;
    auto inst =
        as.assembleLine("Pulse (q0, X180), ({q1, q2}, Y90)");
    ASSERT_EQ(inst.slots.size(), 2u);
    EXPECT_EQ(inst.slots[0].mask, 0x1u);
    EXPECT_EQ(inst.slots[0].uop, 1);
    EXPECT_EQ(inst.slots[1].mask, 0x6u);
    EXPECT_EQ(inst.slots[1].uop, 5);
}

TEST(Assembler, QisInstructions)
{
    Assembler as;
    auto apply = as.assembleLine("Apply X180, q2");
    EXPECT_EQ(apply.op, Opcode::Apply);
    EXPECT_EQ(apply.gate, 1);
    EXPECT_EQ(apply.qmask, 0x4u);
    auto measure = as.assembleLine("Measure q2, r7");
    EXPECT_EQ(measure.op, Opcode::MeasureQ);
    EXPECT_EQ(measure.rd, 7);
    auto cnot = as.assembleLine("CNOT q1, q2");
    EXPECT_EQ(cnot.op, Opcode::Cnot);
    EXPECT_EQ(cnot.rd, 1);
    EXPECT_EQ(cnot.rs, 2);
}

TEST(Assembler, MemoryOperands)
{
    Assembler as;
    auto load = as.assembleLine("load r9, r3[21]");
    EXPECT_EQ(load, Instruction::load(9, 3, 21));
    auto store = as.assembleLine("store r9, r3[0]");
    EXPECT_EQ(store, Instruction::store(9, 3, 0));
}

TEST(Assembler, NumericBranchTarget)
{
    Assembler as;
    Program p = as.assemble("br 0\nnop");
    EXPECT_EQ(p.at(0), Instruction::br(0));
}

struct BadSource
{
    const char *name;
    const char *text;
};

class AssemblerErrors : public ::testing::TestWithParam<BadSource>
{};

TEST_P(AssemblerErrors, Rejects)
{
    setLogQuiet(true);
    Assembler as;
    EXPECT_THROW(as.assemble(GetParam().text), quma::FatalError)
        << GetParam().name;
    setLogQuiet(false);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AssemblerErrors,
    ::testing::Values(
        BadSource{"unknown mnemonic", "frobnicate r1"},
        BadSource{"bad register", "mov r99, 1"},
        BadSource{"missing operand", "mov r1"},
        BadSource{"undefined label", "bne r1, r2, nowhere"},
        BadSource{"duplicate label", "L: nop\nL: nop"},
        BadSource{"bad qubit set", "Pulse {qx}, I"},
        BadSource{"unknown uop", "Pulse {q0}, BOGUS"},
        BadSource{"unknown gate", "Apply BOGUS, q0"},
        BadSource{"zero wait", "Wait 0"},
        BadSource{"negative mpg", "MPG {q0}, -5"},
        BadSource{"bad memory operand", "load r1, r2"}),
    [](const auto &info) {
        std::string n = info.param.name;
        for (auto &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

// ----------------------------------------------------------- disassembler

TEST(Disassembler, RoundTripThroughAssembler)
{
    Assembler as;
    Program p = as.assemble(R"(
        mov r15, 40000
        mov r1, 0
        mov r2, 16
        Loop:
        QNopReg r15
        Pulse {q0}, X180
        Wait 4
        Pulse (q0, X90), (q1, Y90)
        Wait 4
        Apply Y180, q0
        CNOT q0, q1
        Measure q0, r7
        MPG {q0}, 300
        MD {q0}, r7
        load r9, r3[1]
        add r9, r9, r7
        store r9, r3[1]
        addi r1, r1, 1
        bne r1, r2, Loop
        halt
    )");
    Disassembler dis;
    Program again = as.assemble(dis.render(p));
    ASSERT_EQ(again.size(), p.size());
    for (std::size_t i = 0; i < p.size(); ++i)
        EXPECT_EQ(again.at(i), p.at(i)) << "instruction " << i;
}

TEST(Disassembler, UsesUopNames)
{
    Disassembler dis;
    auto text = dis.render(Instruction::pulse1(0x4, 1));
    EXPECT_NE(text.find("X180"), std::string::npos);
    EXPECT_NE(text.find("{q2}"), std::string::npos);
}

// ---------------------------------------------------------------- program

TEST(Program, BinaryRoundTrip)
{
    Assembler as;
    Program p = as.assemble("mov r1, 5\nWait 10\nhalt");
    Program q = Program::fromBinary(p.toBinary());
    ASSERT_EQ(q.size(), p.size());
    for (std::size_t i = 0; i < p.size(); ++i)
        EXPECT_EQ(q.at(i), p.at(i));
}

TEST(Program, LabelLookup)
{
    Program p;
    p.push(Instruction::nop());
    p.defineLabel("here");
    p.push(Instruction::halt());
    EXPECT_EQ(p.labelTarget("here"), 1u);
    EXPECT_EQ(p.labelAt(1), "here");
    EXPECT_FALSE(p.labelTarget("gone").has_value());
}

} // namespace
} // namespace quma::isa
