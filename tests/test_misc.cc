/**
 * @file
 * Tests for the host link model, the trace recorder, machine
 * configuration validation, spectroscopy and the CPMG echo train.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "experiments/coherence.hh"
#include "isa/assembler.hh"
#include "experiments/spectroscopy.hh"
#include "quma/hostlink.hh"
#include "quma/machine.hh"

namespace quma::core {
namespace {

// --------------------------------------------------------------- hostlink

TEST(HostLink, MetersProgramUpload)
{
    MachineConfig cfg;
    QumaMachine m(cfg);
    HostLink link(m, 30.0e6);

    isa::Assembler as;
    auto prog = as.assemble("mov r1, 1\nWait 10\nhalt");
    link.uploadProgram(prog);
    auto stats = link.stats();
    EXPECT_EQ(stats.uploads, 1u);
    EXPECT_EQ(stats.bytesUp, 3 * sizeof(std::uint64_t));
    EXPECT_GT(stats.secondsUp, 0.0);

    // The uploaded binary is what actually runs.
    auto r = m.run(100000);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(m.registers().read(1), 1);
}

TEST(HostLink, MetersCalibrationAndResults)
{
    MachineConfig cfg;
    QumaMachine m(cfg);
    HostLink link(m);
    link.uploadCalibration();
    m.configureDataCollection(3);
    m.loadAssembly("halt");
    m.run(1000);
    auto avgs = link.retrieveAverages();
    EXPECT_EQ(avgs.size(), 3u);

    auto stats = link.stats();
    EXPECT_EQ(stats.uploads, 1u);
    EXPECT_EQ(stats.downloads, 1u);
    // Three AWG lookup tables' worth of samples.
    EXPECT_GT(stats.bytesUp, 3 * 420u);
    EXPECT_EQ(stats.bytesDown, 3 * sizeof(double));
}

TEST(HostLink, RejectsBadRate)
{
    setLogQuiet(true);
    MachineConfig cfg;
    QumaMachine m(cfg);
    EXPECT_THROW(HostLink(m, 0.0), FatalError);
    setLogQuiet(false);
}

// ---------------------------------------------------------------- trace

TEST(TraceRecorder, DisabledRecordsNothing)
{
    TraceRecorder rec;
    rec.recordUopFire({1, 0, 1, 0x1});
    rec.recordLabelFire({1, 1});
    EXPECT_TRUE(rec.uopFires().empty());
    EXPECT_TRUE(rec.labelFires().empty());
}

TEST(TraceRecorder, EnableClearCycle)
{
    TraceRecorder rec;
    rec.setEnabled(true);
    rec.recordUopFire({1, 0, 1, 0x1});
    rec.recordCodeword({3, 0, 1, 0x1});
    rec.recordPulse({15, 0, 1, 0x1, 20.0});
    EXPECT_EQ(rec.uopFires().size(), 1u);
    EXPECT_EQ(rec.codewords().size(), 1u);
    EXPECT_EQ(rec.pulses().size(), 1u);
    rec.clear();
    EXPECT_TRUE(rec.uopFires().empty());
    EXPECT_TRUE(rec.codewords().empty());
    EXPECT_TRUE(rec.pulses().empty());
}

// --------------------------------------------------------- config checks

TEST(MachineConfig, RejectsEmptyChip)
{
    setLogQuiet(true);
    MachineConfig cfg;
    cfg.qubits.clear();
    EXPECT_THROW(QumaMachine{cfg}, FatalError);
    setLogQuiet(false);
}

TEST(MachineConfig, RejectsBadRouting)
{
    setLogQuiet(true);
    MachineConfig cfg;
    cfg.qubits.assign(2, qsim::paperQubitParams());
    cfg.numAwgs = 2;
    cfg.driveAwg = {0, 5}; // out of range
    EXPECT_THROW(QumaMachine{cfg}, FatalError);
    cfg.driveAwg = {0}; // wrong length
    EXPECT_THROW(QumaMachine{cfg}, FatalError);
    setLogQuiet(false);
}

TEST(MachineConfig, RejectsZeroAwgsOrWidth)
{
    setLogQuiet(true);
    MachineConfig cfg;
    cfg.numAwgs = 0;
    EXPECT_THROW(QumaMachine{cfg}, FatalError);
    MachineConfig cfg2;
    cfg2.exec.issueWidth = 0;
    EXPECT_THROW(QumaMachine{cfg2}, FatalError);
    setLogQuiet(false);
}

// ----------------------------------------------------------- experiments

TEST(Spectroscopy, FindsTheQubit)
{
    using namespace quma::experiments;
    // The 20 ns Gaussian probe has ~50 MHz bandwidth: sweep well
    // beyond it so the response actually falls off at the edges.
    auto cfg = SpectroscopyConfig::withLinearSweep(160.0e6, 17);
    cfg.rounds = 96;
    auto r = runSpectroscopy(cfg);
    ASSERT_EQ(r.population.size(), 17u);
    // The response peaks on resonance (detuning 0 is mid-sweep).
    EXPECT_NEAR(r.peakHz, 0.0, 12.0e6);
    // And falls off at the edges.
    EXPECT_GT(r.population[8], r.population.front() + 0.5);
    EXPECT_GT(r.population[8], r.population.back() + 0.5);
    EXPECT_GT(r.fwhmHz, 0.0);
    EXPECT_LT(r.fwhmHz, 160.0e6);
}

TEST(Cpmg, ReducesToEchoForOnePulse)
{
    using namespace quma::experiments;
    CoherenceConfig cfg = CoherenceConfig::withLinearSweep(16000, 6);
    cfg.rounds = 96;
    cfg.qubitParams.t1Ns = 50000.0;
    cfg.qubitParams.t2Ns = 40000.0;
    cfg.qubitParams.quasiStaticDetuningSigmaHz = 100.0e3;
    auto echo = runEcho(cfg);
    auto cpmg1 = runCpmg(cfg, 1);
    // Same physics, same grid: populations agree within noise.
    for (std::size_t i = 0; i < echo.population.size(); ++i)
        EXPECT_NEAR(cpmg1.population[i], echo.population[i], 0.15);
}

TEST(Cpmg, TrainRefocusesSlowNoise)
{
    using namespace quma::experiments;
    CoherenceConfig cfg = CoherenceConfig::withLinearSweep(12800, 5);
    cfg.rounds = 96;
    cfg.qubitParams.t1Ns = 60000.0;
    cfg.qubitParams.t2Ns = 50000.0;
    cfg.qubitParams.quasiStaticDetuningSigmaHz = 120.0e3;
    auto cpmg4 = runCpmg(cfg, 4);
    EXPECT_TRUE(cpmg4.run.halted);
    EXPECT_TRUE(cpmg4.run.violations.clean());
    // Slow noise refocused: contrast survives across the sweep.
    for (double p : cpmg4.population)
        EXPECT_GT(p, 0.75);
}

} // namespace
} // namespace quma::core
