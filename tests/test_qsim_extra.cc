/**
 * @file
 * Deeper physics property tests: density-matrix/state-vector
 * agreement on random circuits, SSB-grid phase physics, readout
 * error asymmetry, and drive linearity.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hh"
#include "qsim/channels.hh"
#include "qsim/density.hh"
#include "qsim/statevector.hh"
#include "qsim/transmon.hh"
#include "signal/envelope.hh"
#include "signal/modulation.hh"

namespace quma::qsim {
namespace {

constexpr double kPi = std::numbers::pi;
constexpr double kSsb = -50.0e6;

TransmonParams
quietParams()
{
    TransmonParams p = paperQubitParams();
    p.t1Ns = 1e9;
    p.t2Ns = 1e9;
    p.readout.noiseSigma = 0.0;
    return p;
}

signal::DrivePulse
makePulse(const TransmonParams &p, double theta, double phi,
          TimeNs t0_ns)
{
    signal::Envelope unit = signal::Envelope::gaussian(20.0, 1.0);
    double amp = theta / (p.rabiRadPerAmpNs * unit.area());
    signal::Envelope env = signal::Envelope::gaussian(20.0, amp);
    signal::Waveform base(env.sample(1e9), 1e9);
    auto [i, q] = signal::ssbModulate(base, kSsb, 0.0, phi);
    signal::DrivePulse pulse;
    pulse.t0Ns = t0_ns;
    pulse.i = i;
    pulse.q = q;
    pulse.ssbHz = kSsb;
    pulse.carrierHz = p.freqHz - kSsb;
    return pulse;
}

// ------------------------------------- random circuit cross-validation

class RandomCircuitAgreement
    : public ::testing::TestWithParam<unsigned>
{};

TEST_P(RandomCircuitAgreement, DensityMatchesStateVector)
{
    // Pure unitary evolution: the density matrix and state vector
    // must agree on every marginal, for random 3-qubit circuits.
    Rng rng(300 + GetParam());
    StateVector sv(3);
    DensityMatrix rho(3);
    for (int step = 0; step < 25; ++step) {
        if (rng.bernoulli(0.3)) {
            unsigned a = static_cast<unsigned>(rng.uniformInt(0, 2));
            unsigned b = (a + 1 +
                          static_cast<unsigned>(rng.uniformInt(0, 1))) %
                         3;
            if (a == b)
                continue;
            unsigned hi = std::max(a, b), lo = std::min(a, b);
            Mat4 u = rng.bernoulli(0.5) ? gates::cz() : gates::cnot();
            sv.apply2(hi, lo, u);
            rho.apply2(hi, lo, u);
        } else {
            unsigned q = static_cast<unsigned>(rng.uniformInt(0, 2));
            double phi = rng.uniform(0, 2 * kPi);
            double theta = rng.uniform(0, kPi);
            Mat2 u = gates::raxis(phi, theta);
            sv.apply1(q, u);
            rho.apply1(q, u);
        }
    }
    for (unsigned q = 0; q < 3; ++q)
        EXPECT_NEAR(rho.probabilityOne(q), sv.probabilityOne(q),
                    1e-10);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitAgreement,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// ---------------------------------------------------- SSB grid physics

TEST(SsbGrid, OffGridDelayRotatesRamseyPhase)
{
    // Two X90 pulses tau apart: on the 20 ns grid they add up
    // (P1 = 1); shifting the second by a quarter SSB period (5 ns)
    // turns the second axis by 90 degrees (P1 = 1/2); by half a
    // period (10 ns), the second pulse undoes the first (P1 = 0).
    auto p1After = [](TimeNs tau) {
        TransmonParams p = quietParams();
        TransmonChip chip({p}, 1);
        chip.applyDrive(0, makePulse(p, kPi / 2, 0.0, 0));
        chip.applyDrive(0, makePulse(p, kPi / 2, 0.0, tau));
        return chip.probabilityOne(0);
    };
    EXPECT_NEAR(p1After(40), 1.0, 1e-3);
    EXPECT_NEAR(p1After(45), 0.5, 1e-2);
    EXPECT_NEAR(p1After(50), 0.0, 1e-3);
    EXPECT_NEAR(p1After(55), 0.5, 1e-2);
    EXPECT_NEAR(p1After(60), 1.0, 1e-3);
}

TEST(SsbGrid, PhasePeriodIsTwentyNs)
{
    // Identical pulses at t0 and t0 + 20k ns produce the same
    // rotation axis for every k.
    TransmonParams p = quietParams();
    for (TimeNs shift : {20, 40, 100, 2000, 40000}) {
        TransmonChip chip({p}, 1);
        chip.applyDrive(0, makePulse(p, kPi / 2, 0.0, 0));
        chip.applyDrive(0, makePulse(p, kPi / 2, 0.0, shift));
        EXPECT_NEAR(chip.probabilityOne(0), 1.0, 2e-3)
            << "shift " << shift;
    }
}

// -------------------------------------------------- drive linearity

TEST(DriveLinearity, AngleProportionalToAmplitude)
{
    TransmonParams p = quietParams();
    for (double frac : {0.25, 0.5, 0.75, 1.0}) {
        TransmonChip chip({p}, 1);
        chip.applyDrive(0, makePulse(p, kPi * frac, 0.0, 0));
        double expected =
            std::pow(std::sin(kPi * frac / 2.0), 2.0);
        EXPECT_NEAR(chip.probabilityOne(0), expected, 2e-3)
            << "fraction " << frac;
    }
}

TEST(DriveLinearity, OppositeRotationsCancel)
{
    TransmonParams p = quietParams();
    TransmonChip chip({p}, 1);
    chip.applyDrive(0, makePulse(p, kPi / 2, 0.0, 0));
    chip.applyDrive(0, makePulse(p, -kPi / 2, 0.0, 20));
    EXPECT_NEAR(chip.probabilityOne(0), 0.0, 1e-3);
}

// -------------------------------------------------- readout asymmetry

TEST(ReadoutAsymmetry, DecayMakesOneErrorsDominate)
{
    // T1 decay inside the window only corrupts |1> shots: the
    // assignment error for prepared |1> must exceed that for |0>.
    ReadoutParams rp;
    rp.c0 = {30.0, 0.0};
    rp.c1 = {-30.0, 0.0};
    rp.noiseSigma = 60.0;
    const double t1 = 15000.0; // short T1, 1.5 us window
    Rng rng(77);

    // Matched-filter decision identical to the MDU's.
    auto decide = [&](const signal::Waveform &trace) {
        double s = 0;
        const double twoPi = 2.0 * std::numbers::pi;
        for (std::size_t k = 0; k < trace.size(); ++k) {
            double t = (k + 0.5) / rp.adcRateHz;
            double v1 = -30.0 * std::cos(twoPi * rp.ifHz * t);
            double v0 = 30.0 * std::cos(twoPi * rp.ifHz * t);
            s += trace[k] * (v1 - v0);
        }
        return s > 0;
    };

    int err0 = 0, err1 = 0;
    const int shots = 600;
    for (int i = 0; i < shots; ++i) {
        auto t0 = simulateReadout(rp, false, 1500, t1, rng);
        auto t1trace = simulateReadout(rp, true, 1500, t1, rng);
        err0 += decide(t0.trace) != false;
        err1 += decide(t1trace.trace) != true;
    }
    EXPECT_GT(err1, err0 + 10);
    EXPECT_LT(err0, shots / 20);
}

// --------------------------------------------------- busy-window rules

TEST(BusyWindow, OtherQubitsEvolveDuringReadout)
{
    TransmonParams p = quietParams();
    p.t1Ns = 10000.0;
    p.t2Ns = 8000.0;
    TransmonChip chip({p, p}, 5);
    chip.state().apply1(1, gates::pauliX());
    chip.measure(0, 0, 1500);
    chip.advanceTo(10000);
    // Qubit 1 (not measured) decayed for the full 10 us.
    EXPECT_NEAR(chip.probabilityOne(1), std::exp(-1.0), 0.02);
}

TEST(BusyWindow, MeasuredQubitFrozenInsideWindow)
{
    // The measured qubit's in-window evolution lives in the sampled
    // trace; the density matrix must not decay it a second time.
    TransmonParams p = quietParams();
    p.t1Ns = 10000.0;
    p.t2Ns = 8000.0;
    TransmonChip chip({p}, 12345);
    chip.state().apply1(0, gates::pauliX());
    auto trace = chip.measure(0, 0, 1500);
    if (trace.finalOne) {
        chip.advanceTo(1500); // inside/edge of the window
        EXPECT_NEAR(chip.probabilityOne(0), 1.0, 1e-9);
    }
}

} // namespace
} // namespace quma::qsim
