/**
 * @file
 * Tests of the fleet front door (net/gateway.hh): the acceptance
 * invariant -- a sharded AllXY sweep routed through the gateway
 * across two live backends returns results BIT-IDENTICAL to the
 * direct single-server path -- plus the contracts around it:
 * config-affinity routing keeps one configuration on one backend, a
 * backend that is down at connect time is routed around, losing a
 * backend mid-sweep fails its jobs over with no client-visible
 * difference, drain removes a backend from routing while in-flight
 * work finishes, a v3 client is served through a v4 gateway with
 * v3-stamped replies and no progress pushes, the per-connection
 * flow-control cap actually bounds in-flight requests, and a
 * StatsRequest answers with the merged fleet view.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "common/metrics.hh"
#include "experiments/allxy.hh"
#include "net/client.hh"
#include "net/gateway.hh"
#include "net/server.hh"
#include "net/transport.hh"
#include "net/wire.hh"
#include "runtime/service.hh"

namespace quma::net {
namespace {

using runtime::ExperimentService;
using runtime::JobId;
using runtime::JobResult;
using runtime::JobSpec;
using runtime::ServiceConfig;

/** One fleet member: a real server on an ephemeral TCP port. */
struct Backend
{
    ExperimentService service;
    std::uint16_t port = 0;
    std::unique_ptr<QumaServer> server;

    explicit Backend(ServiceConfig sc) : service(sc)
    {
        auto listener = std::make_unique<TcpListener>(0);
        port = listener->port();
        server = std::make_unique<QumaServer>(service,
                                              std::move(listener));
    }
};

std::vector<std::unique_ptr<Backend>>
makeFleet(std::size_t n, ServiceConfig sc = {})
{
    std::vector<std::unique_ptr<Backend>> fleet;
    for (std::size_t i = 0; i < n; ++i)
        fleet.push_back(std::make_unique<Backend>(sc));
    return fleet;
}

std::vector<GatewayBackend>
backendsOf(const std::vector<std::unique_ptr<Backend>> &fleet)
{
    std::vector<GatewayBackend> out;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        GatewayBackend b = tcpBackend("127.0.0.1", fleet[i]->port);
        b.name = "be-" + std::to_string(i);
        out.push_back(std::move(b));
    }
    return out;
}

/** Gateway over `fleet` + its client-facing port. */
std::pair<std::unique_ptr<QumaGateway>, std::uint16_t>
makeGateway(const std::vector<std::unique_ptr<Backend>> &fleet,
            GatewayConfig gc = {})
{
    auto listener = std::make_unique<TcpListener>(0);
    std::uint16_t port = listener->port();
    auto gw = std::make_unique<QumaGateway>(
        backendsOf(fleet), std::move(listener), gc);
    return {std::move(gw), port};
}

/** The acceptance sweep: sharded AllXY, one spec per error point. */
std::vector<JobSpec>
sweepSpecs(std::size_t points, std::size_t rounds = 16)
{
    std::vector<JobSpec> specs;
    for (std::size_t i = 0; i < points; ++i) {
        experiments::AllxyConfig cfg;
        cfg.rounds = rounds;
        cfg.shards = 2;
        cfg.amplitudeError =
            0.05 * static_cast<double>(i) /
            static_cast<double>(points > 1 ? points - 1 : 1);
        cfg.seed = 0x5eed + i;
        specs.push_back(experiments::allxyJob(cfg));
    }
    return specs;
}

/** Await `ids` and return results re-ordered to submission order. */
std::vector<JobResult>
awaitInOrder(QumaClient &client, const std::vector<JobId> &ids)
{
    std::vector<JobResult> byIndex(ids.size());
    for (const auto &[id, result] : client.awaitMany(ids)) {
        for (std::size_t i = 0; i < ids.size(); ++i)
            if (ids[i] == id)
                byIndex[i] = result;
    }
    return byIndex;
}

// --- the acceptance invariant -----------------------------------------------

TEST(Gateway, ShardedSweepThroughTwoBackendsIsBitIdenticalToDirect)
{
    ServiceConfig sc;
    sc.workers = 2;
    std::vector<JobSpec> specs = sweepSpecs(8);

    // Direct: one server, no gateway.
    std::vector<JobResult> direct;
    {
        auto fleet = makeFleet(1, sc);
        QumaClient client("127.0.0.1", fleet[0]->port);
        std::vector<JobId> ids = client.submitAll(specs);
        direct = awaitInOrder(client, ids);
    }

    // Fleet: the same sweep through a gateway over two backends.
    auto fleet = makeFleet(2, sc);
    auto [gw, port] = makeGateway(fleet);
    QumaClient client("127.0.0.1", port);
    std::vector<JobId> ids = client.submitAll(specs);
    std::vector<JobResult> routed = awaitInOrder(client, ids);

    ASSERT_EQ(routed.size(), direct.size());
    for (std::size_t i = 0; i < routed.size(); ++i) {
        ASSERT_FALSE(routed[i].failed()) << routed[i].error;
        EXPECT_EQ(routed[i], direct[i])
            << "point " << i << " diverged through the gateway";
    }

    // Both backends actually served the sweep (distinct machine
    // configs spread under affinity hashing with 8 points and 2
    // backends; all-on-one would be a (1/2)^7 fluke, excluded by
    // the fixed seeds).
    std::size_t served = 0;
    for (const auto &b : fleet)
        if (b->service.stats().scheduler.submitted > 0)
            ++served;
    EXPECT_EQ(served, 2u);
    EXPECT_EQ(gw->stats().resultsForwarded, specs.size());
    EXPECT_EQ(gw->stats().jobsInFlight, 0u);
}

// --- routing ----------------------------------------------------------------

TEST(Gateway, ConfigAffinityKeepsOneConfigOnOneBackend)
{
    ServiceConfig sc;
    sc.workers = 1;
    auto fleet = makeFleet(2, sc);
    auto [gw, port] = makeGateway(fleet);
    QumaClient client("127.0.0.1", port);

    // Ten jobs, IDENTICAL machine config (seeds differ -- configKey
    // excludes them): affinity must land every one on the same
    // backend, where the program cache and pool shard are warm.
    experiments::AllxyConfig cfg;
    cfg.rounds = 4;
    std::vector<JobSpec> specs;
    for (std::size_t i = 0; i < 10; ++i) {
        cfg.seed = 0x900d + i;
        specs.push_back(experiments::allxyJob(cfg));
    }
    std::vector<JobId> ids = client.submitAll(specs);
    for (JobResult &r : awaitInOrder(client, ids))
        ASSERT_FALSE(r.failed());

    std::vector<std::size_t> counts;
    for (const auto &b : fleet)
        counts.push_back(b->service.stats().scheduler.submitted);
    EXPECT_TRUE((counts[0] == 10 && counts[1] == 0) ||
                (counts[0] == 0 && counts[1] == 10))
        << "config affinity split one config across backends: "
        << counts[0] << "/" << counts[1];
}

TEST(Gateway, BackendDownAtConnectTimeIsRoutedAround)
{
    ServiceConfig sc;
    sc.workers = 1;
    auto fleet = makeFleet(1, sc);

    // One live backend plus one pointing at a port nothing listens
    // on (bound then immediately closed, so it is really dead).
    std::uint16_t deadPort;
    {
        TcpListener probe(0);
        deadPort = probe.port();
    }
    std::vector<GatewayBackend> backends = backendsOf(fleet);
    GatewayBackend dead = tcpBackend("127.0.0.1", deadPort);
    dead.name = "dead";
    backends.push_back(std::move(dead));

    auto listener = std::make_unique<TcpListener>(0);
    std::uint16_t port = listener->port();
    QumaGateway gw(std::move(backends), std::move(listener));

    QumaGateway::Stats boot = gw.stats();
    ASSERT_EQ(boot.backends.size(), 2u);
    EXPECT_TRUE(boot.backends[0].healthy);
    EXPECT_FALSE(boot.backends[1].healthy)
        << "a dead backend must be unhealthy before the first client";

    // Every job lands on the live backend, none error.
    QumaClient client("127.0.0.1", port);
    std::vector<JobId> ids = client.submitAll(sweepSpecs(6, 4));
    for (JobResult &r : awaitInOrder(client, ids))
        ASSERT_FALSE(r.failed());
    EXPECT_EQ(fleet[0]->service.stats().scheduler.submitted, 6u);
}

TEST(Gateway, NoHealthyBackendAnswersCleanErrors)
{
    std::uint16_t deadPort;
    {
        TcpListener probe(0);
        deadPort = probe.port();
    }
    std::vector<GatewayBackend> backends;
    backends.push_back(tcpBackend("127.0.0.1", deadPort));
    auto listener = std::make_unique<TcpListener>(0);
    std::uint16_t port = listener->port();
    QumaGateway gw(std::move(backends), std::move(listener));

    // Raw v3 frames: a Submit gets ErrorReply{Internal}, a
    // TrySubmit gets a clean rejection -- and the connection stays
    // serviceable afterwards (a Stats round trip still answers).
    std::unique_ptr<ByteStream> raw = tcpConnect("127.0.0.1", port);
    Writer submit;
    encodeJobSpec(submit, sweepSpecs(1, 4)[0]);
    std::vector<std::uint8_t> frame =
        sealFrame(MsgType::SubmitRequest, 1, submit, 3);
    raw->sendAll(frame.data(), frame.size());
    {
        std::uint8_t header[kFrameHeaderBytes];
        ASSERT_TRUE(raw->recvAll(header, sizeof(header)));
        EXPECT_EQ(checkFramePrefixCompat(header), 3u);
        FrameHeader fh = decodeFrameHeaderUnchecked(header);
        ASSERT_EQ(fh.type, MsgType::ErrorReply);
        EXPECT_EQ(fh.requestId, 1u);
        std::vector<std::uint8_t> body(fh.length);
        ASSERT_TRUE(raw->recvAll(body.data(), body.size()));
        Reader r(body);
        ErrorFrame err = decodeErrorFrame(r);
        EXPECT_EQ(err.code, WireErrorCode::Internal);
    }
    frame = sealFrame(MsgType::TrySubmitRequest, 2, submit, 3);
    raw->sendAll(frame.data(), frame.size());
    {
        std::uint8_t header[kFrameHeaderBytes];
        ASSERT_TRUE(raw->recvAll(header, sizeof(header)));
        FrameHeader fh = decodeFrameHeaderUnchecked(header);
        ASSERT_EQ(fh.type, MsgType::TrySubmitReply);
        std::vector<std::uint8_t> body(fh.length);
        ASSERT_TRUE(raw->recvAll(body.data(), body.size()));
        Reader r(body);
        EXPECT_FALSE(r.boolean());
        EXPECT_EQ(r.u64(), 0u);
        r.expectEnd();
    }
    EXPECT_GE(gw.stats().jobsShed, 1u);
}

// --- failover ---------------------------------------------------------------

TEST(Gateway, BackendLossMidSweepFailsOverBitIdentically)
{
    std::vector<JobSpec> specs = sweepSpecs(8);

    // The reference run, direct against one server.
    ServiceConfig direct_sc;
    direct_sc.workers = 2;
    std::vector<JobResult> direct;
    {
        auto ref = makeFleet(1, direct_sc);
        QumaClient client("127.0.0.1", ref[0]->port);
        direct = awaitInOrder(client, client.submitAll(specs));
    }

    // The chaos run: two PAUSED backends, so every job is acked and
    // queued but none has completed when the victim dies.
    ServiceConfig sc;
    sc.workers = 2;
    sc.startPaused = true;
    auto fleet = makeFleet(2, sc);
    GatewayConfig gc;
    gc.healthInterval = std::chrono::milliseconds(100);
    auto [gw, port] = makeGateway(fleet, gc);

    QumaClient client("127.0.0.1", port);
    std::vector<JobId> ids = client.submitAll(specs);

    // Awaits must be in flight when the backend dies: the failover
    // has to re-issue them against the resubmitted jobs.
    std::vector<JobResult> routed;
    std::thread waiter(
        [&] { routed = awaitInOrder(client, ids); });
    // Both backends hold queued jobs (affinity spread, as in the
    // acceptance test); wait until every submit was acked.
    for (int i = 0; i < 2000 && gw->stats().jobsInFlight < specs.size();
         ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(gw->stats().jobsInFlight, specs.size());

    // Kill the backend holding the larger share (its listener and
    // every connection drop, like a kill -9 of the process).
    std::size_t victim =
        fleet[0]->service.stats().scheduler.submitted >=
                fleet[1]->service.stats().scheduler.submitted
            ? 0
            : 1;
    const std::size_t victimJobs =
        fleet[victim]->service.stats().scheduler.submitted;
    ASSERT_GT(victimJobs, 0u);
    fleet[victim]->server->stop();

    // Unpause the survivor; failover resubmission + re-issued awaits
    // must deliver EVERY result.
    fleet[1 - victim]->service.start();
    waiter.join();

    ASSERT_EQ(routed.size(), direct.size());
    for (std::size_t i = 0; i < routed.size(); ++i) {
        ASSERT_FALSE(routed[i].failed())
            << "point " << i << ": " << routed[i].error;
        EXPECT_EQ(routed[i], direct[i])
            << "failover changed point " << i;
    }
    QumaGateway::Stats s = gw->stats();
    EXPECT_GE(s.jobsResubmitted, victimJobs)
        << "every victim job must have been re-homed";
    EXPECT_GE(s.failovers, 1u);
    EXPECT_EQ(s.jobsInFlight, 0u);
    EXPECT_EQ(
        fleet[1 - victim]->service.stats().scheduler.completed,
        specs.size())
        << "the survivor must have run the whole sweep";
}

// --- drain ------------------------------------------------------------------

TEST(Gateway, DrainRemovesFromRoutingWhileInFlightFinishes)
{
    ServiceConfig sc;
    sc.workers = 1;
    sc.startPaused = true;
    auto fleet = makeFleet(2, sc);
    auto [gw, port] = makeGateway(fleet);
    QumaClient client("127.0.0.1", port);

    // One config -> one backend; the whole first batch is queued
    // (paused) on the affinity winner.
    experiments::AllxyConfig cfg;
    cfg.rounds = 4;
    std::vector<JobSpec> first;
    for (std::size_t i = 0; i < 4; ++i) {
        cfg.seed = 0xaaa + i;
        first.push_back(experiments::allxyJob(cfg));
    }
    std::vector<JobId> firstIds = client.submitAll(first);
    std::size_t winner =
        fleet[0]->service.stats().scheduler.submitted > 0 ? 0 : 1;
    ASSERT_EQ(fleet[winner]->service.stats().scheduler.submitted, 4u);

    // Drain the winner: the SAME config must now route elsewhere,
    // while its queued jobs stay put.
    ASSERT_TRUE(gw->drain("be-" + std::to_string(winner)));
    EXPECT_FALSE(gw->drain("no-such-backend"));
    std::vector<JobSpec> second;
    for (std::size_t i = 0; i < 4; ++i) {
        cfg.seed = 0xbbb + i;
        second.push_back(experiments::allxyJob(cfg));
    }
    std::vector<JobId> secondIds = client.submitAll(second);
    EXPECT_EQ(fleet[1 - winner]->service.stats().scheduler.submitted,
              4u)
        << "a drained backend must not receive new jobs";

    // Unpause both: the drained backend finishes its in-flight work
    // -- drain is not failover, nothing is resubmitted.
    fleet[0]->service.start();
    fleet[1]->service.start();
    for (JobResult &r : awaitInOrder(client, firstIds))
        ASSERT_FALSE(r.failed());
    for (JobResult &r : awaitInOrder(client, secondIds))
        ASSERT_FALSE(r.failed());
    EXPECT_EQ(gw->stats().jobsResubmitted, 0u);

    // Undrain: the config flows back to its affinity winner.
    ASSERT_TRUE(gw->undrain("be-" + std::to_string(winner)));
    cfg.seed = 0xccc;
    std::vector<JobId> third =
        client.submitAll({experiments::allxyJob(cfg)});
    for (JobResult &r : awaitInOrder(client, third))
        ASSERT_FALSE(r.failed());
    EXPECT_EQ(fleet[winner]->service.stats().scheduler.submitted, 5u);
}

// --- wire compatibility -----------------------------------------------------

/** Read one frame tolerant of any compatible version stamp. */
std::tuple<std::uint16_t, FrameHeader, std::vector<std::uint8_t>>
recvFrameCompat(ByteStream &stream)
{
    std::uint8_t header[kFrameHeaderBytes];
    EXPECT_TRUE(stream.recvAll(header, sizeof(header)));
    std::uint16_t version = checkFramePrefixCompat(header);
    FrameHeader fh = decodeFrameHeaderUnchecked(header);
    std::vector<std::uint8_t> payload(fh.length);
    if (fh.length > 0) {
        EXPECT_TRUE(stream.recvAll(payload.data(), payload.size()));
    }
    return {version, fh, std::move(payload)};
}

TEST(Gateway, V3ClientIsServedThroughV4Gateway)
{
    ServiceConfig sc;
    sc.workers = 1;
    sc.progressInterval = std::chrono::milliseconds(0);
    auto fleet = makeFleet(2, sc);
    auto [gw, port] = makeGateway(fleet);

    std::unique_ptr<ByteStream> raw = tcpConnect("127.0.0.1", port);
    // A v3 submit: JobSpec only, no appended trace context. The
    // sweep spec is SHARDED, so a v4 peer would see progress pushes
    // -- the v3 peer must not.
    Writer submit;
    encodeJobSpec(submit, sweepSpecs(1, 8)[0]);
    std::vector<std::uint8_t> frame =
        sealFrame(MsgType::SubmitRequest, 7, submit, 3);
    raw->sendAll(frame.data(), frame.size());
    auto [sver, sfh, sbody] = recvFrameCompat(*raw);
    EXPECT_EQ(sver, 3u) << "reply to a v3 peer must be v3-stamped";
    ASSERT_EQ(sfh.type, MsgType::SubmitReply);
    EXPECT_EQ(sfh.requestId, 7u);
    Reader sr(sbody);
    JobId id = sr.u64();
    sr.expectEnd();

    Writer await;
    await.u64(id);
    frame = sealFrame(MsgType::AwaitRequest, 8, await, 3);
    raw->sendAll(frame.data(), frame.size());
    auto [aver, afh, abody] = recvFrameCompat(*raw);
    EXPECT_EQ(aver, 3u);
    ASSERT_EQ(afh.type, MsgType::AwaitReply)
        << "the first push after a v3 await must be the result, "
           "never a ProgressFrame";
    EXPECT_EQ(afh.requestId, 8u);
    Reader ar(abody);
    JobResult result = decodeJobResult(ar);
    EXPECT_FALSE(result.failed());

    // Stats through the gateway at v3: the merged fleet frame.
    frame = sealFrame(MsgType::StatsRequest, 9, Writer{}, 3);
    raw->sendAll(frame.data(), frame.size());
    auto [tver, tfh, tbody] = recvFrameCompat(*raw);
    EXPECT_EQ(tver, 3u);
    ASSERT_EQ(tfh.type, MsgType::StatsReply);
    Reader tr(tbody);
    StatsFrame stats = decodeStatsFrame(tr);
    EXPECT_EQ(stats.scheduler.submitted, 1u);
    EXPECT_EQ(gw->stats().progressForwarded, 0u);
}

// --- flow control -----------------------------------------------------------

TEST(Gateway, FlowControlCapBoundsInFlightRequests)
{
    ServiceConfig sc;
    sc.workers = 2;
    sc.startPaused = true;
    auto fleet = makeFleet(2, sc);
    GatewayConfig gc;
    gc.maxInFlightPerClient = 4;
    auto [gw, port] = makeGateway(fleet, gc);
    QumaClient client("127.0.0.1", port);

    // 16 submits then 16 awaits against paused backends: awaits
    // cannot complete until start(), so without the cap the
    // connection would have 16 requests in flight at once.
    std::vector<JobSpec> specs = sweepSpecs(16, 4);
    std::vector<JobId> ids = client.submitAll(specs);
    std::vector<JobResult> results;
    std::thread waiter(
        [&] { results = awaitInOrder(client, ids); });
    // Let the client push every await it can; the gateway's reader
    // must stop reading at 4 in flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    EXPECT_LE(gw->stats().inFlightHighWater, 4u)
        << "the flow-control cap did not bound in-flight requests";

    fleet[0]->service.start();
    fleet[1]->service.start();
    waiter.join();
    for (JobResult &r : results)
        ASSERT_FALSE(r.failed());
    EXPECT_LE(gw->stats().inFlightHighWater, 4u);
}

// --- aggregation ------------------------------------------------------------

TEST(Gateway, StatsRequestAnswersWithMergedFleetView)
{
    ServiceConfig sc;
    sc.workers = 1;
    sc.queueCapacity = 64;
    auto fleet = makeFleet(2, sc);
    auto [gw, port] = makeGateway(fleet);
    QumaClient client("127.0.0.1", port);

    std::vector<JobId> ids = client.submitAll(sweepSpecs(8, 4));
    for (JobResult &r : awaitInOrder(client, ids))
        ASSERT_FALSE(r.failed());

    StatsFrame fleetView = client.stats();
    EXPECT_EQ(fleetView.scheduler.submitted, 8u)
        << "fleet submitted must be the sum over backends";
    EXPECT_EQ(fleetView.scheduler.completed, 8u);
    // Capacities sum; each backend contributes its own queue.
    std::size_t capacity = 0;
    for (const auto &b : fleet)
        capacity += b->service.stats().effectiveQueueCapacity;
    EXPECT_EQ(fleetView.effectiveQueueCapacity, capacity);

    // And the gateway's own metrics bind/render cleanly, with the
    // per-backend identity labels.
    metrics::MetricsRegistry registry(true);
    gw->bindMetrics(registry);
    std::string text = registry.renderPrometheus();
    EXPECT_NE(text.find("quma_gateway_results_forwarded_total 8"),
              std::string::npos)
        << text.substr(0, 512);
    EXPECT_NE(text.find("quma_fleet_jobs_completed_total 8"),
              std::string::npos);
    EXPECT_NE(
        text.find("quma_gateway_backend_healthy{backend=\"be-0\"} 1"),
        std::string::npos);
}

} // namespace
} // namespace quma::net
