/**
 * @file
 * Unit tests for the pulse-level transmon model: drive calibration,
 * the timing-sets-the-axis property (paper §4.2.3), detuning,
 * decoherence and readout.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/logging.hh"
#include "qsim/transmon.hh"
#include "signal/envelope.hh"
#include "signal/modulation.hh"

namespace quma::qsim {
namespace {

constexpr double kPi = std::numbers::pi;
constexpr double kSsb = -50.0e6;

TransmonParams
quietParams()
{
    TransmonParams p = paperQubitParams();
    p.t1Ns = 1e9; // effectively no decoherence
    p.t2Ns = 1e9;
    p.readout.noiseSigma = 0.0;
    return p;
}

/** Build a calibrated drive pulse for angle theta at phase phi. */
signal::DrivePulse
makePulse(const TransmonParams &p, double theta, double phi,
          TimeNs t0_ns)
{
    double gain = p.rabiRadPerAmpNs;
    signal::Envelope unit = signal::Envelope::gaussian(20.0, 1.0);
    double amp = theta / (gain * unit.area());
    signal::Envelope env = signal::Envelope::gaussian(20.0, amp);
    signal::Waveform base(env.sample(1e9), 1e9);
    auto [i, q] = signal::ssbModulate(base, kSsb, 0.0, phi);
    signal::DrivePulse pulse;
    pulse.t0Ns = t0_ns;
    pulse.i = i;
    pulse.q = q;
    pulse.ssbHz = kSsb;
    pulse.carrierHz = p.freqHz - kSsb;
    return pulse;
}

TEST(Transmon, CalibratedPiPulseExcites)
{
    TransmonChip chip({quietParams()}, 1);
    chip.applyDrive(0, makePulse(chip.qubitParams(0), kPi, 0.0, 0));
    EXPECT_NEAR(chip.probabilityOne(0), 1.0, 1e-3);
}

TEST(Transmon, HalfPiPulseReachesEquator)
{
    TransmonChip chip({quietParams()}, 1);
    chip.applyDrive(0, makePulse(chip.qubitParams(0), kPi / 2, 0.0, 0));
    EXPECT_NEAR(chip.probabilityOne(0), 0.5, 1e-3);
}

TEST(Transmon, TwoPiPulsesReturnToGround)
{
    TransmonChip chip({quietParams()}, 1);
    auto p = chip.qubitParams(0);
    chip.applyDrive(0, makePulse(p, kPi, 0.0, 0));
    chip.applyDrive(0, makePulse(p, kPi, 0.0, 20));
    EXPECT_NEAR(chip.probabilityOne(0), 0.0, 1e-3);
}

TEST(Transmon, PulsesAtTwentyNsGridKeepAxis)
{
    // With -50 MHz SSB, the carrier phase repeats every 20 ns, so
    // X90 followed by X90 20 ns later adds up to a pi rotation.
    TransmonChip chip({quietParams()}, 1);
    auto p = chip.qubitParams(0);
    chip.applyDrive(0, makePulse(p, kPi / 2, 0.0, 0));
    chip.applyDrive(0, makePulse(p, kPi / 2, 0.0, 20));
    EXPECT_NEAR(chip.probabilityOne(0), 1.0, 1e-3);
}

TEST(Transmon, FiveNsShiftTurnsXIntoY)
{
    // THE paper property (§4.2.3): with 50 MHz SSB, playing the x
    // envelope 5 ns late rotates the axis by 90 degrees. An X90 at
    // t=0 followed by a shifted "X90" at t+5ns-grid behaves like a
    // y rotation: starting from |0>, X90 then Y90 leaves the qubit
    // on the equator rather than completing the flip.
    TransmonChip onGrid({quietParams()}, 1);
    auto p = onGrid.qubitParams(0);
    onGrid.applyDrive(0, makePulse(p, kPi / 2, 0.0, 0));
    onGrid.applyDrive(0, makePulse(p, kPi / 2, 0.0, 20));
    EXPECT_NEAR(onGrid.probabilityOne(0), 1.0, 1e-3);

    TransmonChip shifted({quietParams()}, 1);
    shifted.applyDrive(0, makePulse(p, kPi / 2, 0.0, 0));
    shifted.applyDrive(0, makePulse(p, kPi / 2, 0.0, 25));
    // X90 then (axis-shifted) Y90: P1 stays at 1/2.
    EXPECT_NEAR(shifted.probabilityOne(0), 0.5, 1e-3);
}

TEST(Transmon, TenNsShiftInvertsAxis)
{
    // 10 ns shift = 180 degrees: the second pulse undoes the first.
    TransmonChip chip({quietParams()}, 1);
    auto p = chip.qubitParams(0);
    chip.applyDrive(0, makePulse(p, kPi / 2, 0.0, 0));
    chip.applyDrive(0, makePulse(p, kPi / 2, 0.0, 30));
    EXPECT_NEAR(chip.probabilityOne(0), 0.0, 1e-3);
}

TEST(Transmon, EnvelopePhaseSelectsAxis)
{
    // X90 then Y90 via envelope phase: equator either way.
    TransmonChip chip({quietParams()}, 1);
    auto p = chip.qubitParams(0);
    chip.applyDrive(0, makePulse(p, kPi / 2, 0.0, 0));
    chip.applyDrive(0, makePulse(p, kPi / 2, kPi / 2, 20));
    EXPECT_NEAR(chip.probabilityOne(0), 0.5, 1e-3);
}

TEST(Transmon, DetunedDriveRotatesLess)
{
    TransmonParams p = quietParams();
    TransmonChip resonant({p}, 1);
    resonant.applyDrive(0, makePulse(p, kPi, 0.0, 0));

    TransmonParams detunedParams = quietParams();
    detunedParams.freqHz += 30.0e6; // pulse stays at the old carrier
    TransmonChip detuned({detunedParams}, 1);
    auto pulse = makePulse(p, kPi, 0.0, 0);
    detuned.applyDrive(0, pulse);
    EXPECT_GT(resonant.probabilityOne(0),
              detuned.probabilityOne(0) + 0.05);
}

TEST(Transmon, IdleDecayFollowsT1)
{
    TransmonParams p = quietParams();
    p.t1Ns = 30000.0;
    p.t2Ns = 25000.0;
    TransmonChip chip({p}, 1);
    chip.applyDrive(0, makePulse(p, kPi, 0.0, 0));
    double p1 = chip.probabilityOne(0);
    chip.advanceTo(30020);
    EXPECT_NEAR(chip.probabilityOne(0), p1 * std::exp(-30000.0 / 30000.0),
                1e-3);
}

TEST(Transmon, AdvanceBackwardsIsFatal)
{
    setLogQuiet(true);
    TransmonChip chip({quietParams()}, 1);
    chip.advanceTo(100);
    EXPECT_THROW(chip.advanceTo(50), quma::FatalError);
    EXPECT_NO_THROW(chip.advanceAtLeast(50));
    setLogQuiet(false);
}

TEST(Transmon, MeasureCollapsesAndReportsTruth)
{
    TransmonChip chip({quietParams()}, 7);
    chip.applyDrive(0, makePulse(chip.qubitParams(0), kPi, 0.0, 0));
    auto trace = chip.measure(0, 100, 1500);
    EXPECT_TRUE(trace.initialOne);
    EXPECT_NEAR(chip.probabilityOne(0), trace.finalOne ? 1.0 : 0.0,
                1e-9);
}

TEST(Transmon, MeasureStatisticsFollowBornRule)
{
    TransmonParams p = quietParams();
    int ones = 0;
    const int shots = 2000;
    for (int s = 0; s < shots; ++s) {
        TransmonChip chip({p}, 1000 + s);
        chip.applyDrive(0, makePulse(p, kPi / 2, 0.0, 0));
        ones += chip.measure(0, 100, 1500).initialOne;
    }
    EXPECT_NEAR(ones / static_cast<double>(shots), 0.5, 0.04);
}

TEST(Transmon, OverlappingReadoutIsFatal)
{
    setLogQuiet(true);
    TransmonChip chip({quietParams()}, 1);
    chip.measure(0, 0, 1500);
    EXPECT_THROW(chip.measure(0, 1000, 1500), quma::FatalError);
    setLogQuiet(false);
}

TEST(Transmon, DecayDuringReadoutResetsState)
{
    // With T1 much shorter than the readout window the excited state
    // nearly always decays inside the window and ends in |0>.
    TransmonParams p = quietParams();
    p.t1Ns = 100.0;
    p.t2Ns = 150.0;
    TransmonChip chip({p}, 99);
    chip.state().apply1(0, gates::pauliX());
    auto trace = chip.measure(0, 0, 5000);
    EXPECT_TRUE(trace.initialOne);
    EXPECT_FALSE(trace.finalOne);
    EXPECT_NEAR(chip.probabilityOne(0), 0.0, 1e-9);
    EXPECT_GE(trace.decayAtNs, 0.0);
}

TEST(Transmon, NewRoundResetsStateAndClock)
{
    TransmonChip chip({quietParams()}, 1);
    chip.applyDrive(0, makePulse(chip.qubitParams(0), kPi, 0.0, 0));
    chip.newRound();
    EXPECT_EQ(chip.now(), 0);
    EXPECT_NEAR(chip.probabilityOne(0), 0.0, 1e-12);
}

TEST(Transmon, QuasiStaticDetuningDephasesRamsey)
{
    // Chip-level Ramsey: with sigma > 0 the averaged equator phase
    // randomises and the fringe contrast at fixed tau collapses.
    auto ramsey = [](double sigma_hz, TimeNs tau) {
        TransmonParams p = quietParams();
        p.quasiStaticDetuningSigmaHz = sigma_hz;
        double acc = 0;
        const int shots = 400;
        for (int s = 0; s < shots; ++s) {
            TransmonChip chip({p}, 5000 + s);
            chip.newRound();
            chip.applyDrive(0, makePulse(p, kPi / 2, 0.0, 0));
            chip.advanceTo(20 + tau);
            chip.applyDrive(0, makePulse(p, kPi / 2, 0.0, 20 + tau));
            acc += chip.probabilityOne(0);
        }
        return acc / shots;
    };
    // tau on the 20 ns grid so the drive phase is unshifted.
    EXPECT_NEAR(ramsey(0.0, 2000), 1.0, 0.05);
    EXPECT_NEAR(ramsey(400.0e3, 2000), 0.5, 0.12);
}

TEST(Readout, TraceSeparatesStates)
{
    ReadoutParams rp;
    rp.c0 = {30.0, 0.0};
    rp.c1 = {-30.0, 0.0};
    rp.noiseSigma = 0.0;
    Rng rng(1);
    auto t0 = simulateReadout(rp, false, 1500, 1e9, rng);
    auto t1 = simulateReadout(rp, true, 1500, 1e9, rng);
    auto z0 = signal::demodulate(t0.trace, rp.ifHz);
    auto z1 = signal::demodulate(t1.trace, rp.ifHz);
    EXPECT_NEAR(z0.real(), 30.0, 1.0);
    EXPECT_NEAR(z1.real(), -30.0, 1.0);
}

TEST(Readout, TraceLengthMatchesAdcRate)
{
    ReadoutParams rp;
    Rng rng(1);
    auto t = simulateReadout(rp, false, 1500, 1e9, rng);
    EXPECT_EQ(t.trace.size(), 300u); // 1500 ns at 200 MSa/s
}

} // namespace
} // namespace quma::qsim
