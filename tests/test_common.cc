/**
 * @file
 * Unit tests for the common utilities: logging, statistics, fits,
 * strings and bit fields.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/bitfield.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/strings.hh"
#include "common/types.hh"

namespace quma {
namespace {

// ---------------------------------------------------------------- logging

TEST(Logging, FatalThrowsFatalError)
{
    setLogQuiet(true);
    EXPECT_THROW(fatal("boom ", 42), FatalError);
    setLogQuiet(false);
}

TEST(Logging, PanicThrowsPanicError)
{
    setLogQuiet(true);
    EXPECT_THROW(panic("bug ", 1), PanicError);
    setLogQuiet(false);
}

TEST(Logging, AssertMacroPassesAndFails)
{
    setLogQuiet(true);
    EXPECT_NO_THROW(quma_assert(1 + 1 == 2, "fine"));
    EXPECT_THROW(quma_assert(1 + 1 == 3, "broken"), PanicError);
    setLogQuiet(false);
}

TEST(Logging, MessagesCarryFormattedContent)
{
    setLogQuiet(true);
    try {
        fatal("value is ", 7, " not ", 8);
        FAIL() << "should have thrown";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value is 7 not 8");
    }
    setLogQuiet(false);
}

// ------------------------------------------------------------------ types

TEST(Types, CycleNsConversions)
{
    EXPECT_EQ(cyclesToNs(1), 5);
    EXPECT_EQ(cyclesToNs(40000), 200000);
    EXPECT_EQ(nsToCycles(5), 1u);
    EXPECT_EQ(nsToCycles(20), 4u);
    // Rounds up.
    EXPECT_EQ(nsToCycles(6), 2u);
    EXPECT_EQ(nsToCycles(1), 1u);
}

TEST(Types, CtpgDelayIs16Cycles)
{
    EXPECT_EQ(kCtpgDelayCycles, 16u);
    EXPECT_EQ(kCtpgDelayNs, 80);
}

// ------------------------------------------------------------------- rng

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double x = rng.uniform(2.0, 3.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 3.0);
    }
}

TEST(Rng, UniformIntInclusive)
{
    Rng rng(7);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.uniformInt(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        sawLo |= v == 3;
        sawHi |= v == 5;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    RunningStats stats;
    for (int i = 0; i < 20000; ++i)
        stats.add(rng.gaussian(5.0, 2.0));
    EXPECT_NEAR(stats.mean(), 5.0, 0.1);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

// ----------------------------------------------------------------- stats

TEST(RunningStats, Empty)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, ClearResets)
{
    RunningStats s;
    s.add(1.0);
    s.clear();
    EXPECT_EQ(s.count(), 0u);
}

TEST(LinearFit, ExactLine)
{
    std::vector<double> x{0, 1, 2, 3, 4};
    std::vector<double> y{1, 3, 5, 7, 9};
    auto fit = linearFit(x, y);
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, RejectsDegenerate)
{
    setLogQuiet(true);
    std::vector<double> x{1.0};
    std::vector<double> y{2.0};
    EXPECT_THROW(linearFit(x, y), FatalError);
    setLogQuiet(false);
}

TEST(ExpFit, RecoverKnownDecay)
{
    std::vector<double> x, y;
    for (int i = 0; i <= 40; ++i) {
        double t = i * 500.0;
        x.push_back(t);
        y.push_back(0.9 * std::exp(-t / 3000.0) + 0.05);
    }
    auto fit = expDecayFit(x, y);
    EXPECT_NEAR(fit.tau, 3000.0, 30.0);
    EXPECT_NEAR(fit.amplitude, 0.9, 0.01);
    EXPECT_NEAR(fit.offset, 0.05, 0.01);
    EXPECT_LT(fit.rmsResidual, 1e-6);
}

TEST(ExpFit, ToleratesNoise)
{
    Rng rng(3);
    std::vector<double> x, y;
    for (int i = 0; i <= 60; ++i) {
        double t = i * 200.0;
        x.push_back(t);
        y.push_back(std::exp(-t / 4000.0) + rng.gaussian(0, 0.01));
    }
    auto fit = expDecayFit(x, y);
    EXPECT_NEAR(fit.tau, 4000.0, 400.0);
}

TEST(DampedCosineFit, RecoverFringe)
{
    std::vector<double> x, y;
    const double f = 1.0 / 800.0; // per ns
    for (int i = 0; i <= 80; ++i) {
        double t = i * 50.0;
        x.push_back(t);
        y.push_back(0.5 +
                    0.45 * std::exp(-t / 2500.0) *
                        std::cos(2 * std::numbers::pi * f * t));
    }
    auto fit = dampedCosineFit(x, y, f * 1.2);
    EXPECT_NEAR(fit.frequency, f, f * 0.05);
    EXPECT_NEAR(fit.tau, 2500.0, 500.0);
    EXPECT_NEAR(fit.offset, 0.5, 0.02);
    EXPECT_NEAR(fit.amplitude, 0.45, 0.05);
}

TEST(MeanAbsDeviation, Basics)
{
    EXPECT_DOUBLE_EQ(meanAbsDeviation({1, 2, 3}, {1, 2, 3}), 0.0);
    EXPECT_DOUBLE_EQ(meanAbsDeviation({0, 0}, {1, -1}), 1.0);
    EXPECT_DOUBLE_EQ(meanAbsDeviation({}, {}), 0.0);
}

// ---------------------------------------------------------------- strings

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  a b  "), "a b");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \t\n"), "");
    EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, Split)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
    auto kept = split("a,b,,c", ',', true);
    ASSERT_EQ(kept.size(), 4u);
    EXPECT_EQ(kept[2], "");
}

TEST(Strings, SplitWhitespace)
{
    auto parts = splitWhitespace("  mov   r1,  40000 ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "mov");
    EXPECT_EQ(parts[1], "r1,");
}

TEST(Strings, CaseAndAffixes)
{
    EXPECT_EQ(toLower("QNopReg"), "qnopreg");
    EXPECT_TRUE(startsWith("Pulse {q0}", "Pulse"));
    EXPECT_FALSE(startsWith("Pu", "Pulse"));
    EXPECT_TRUE(endsWith("file.cc", ".cc"));
    EXPECT_FALSE(endsWith("c", ".cc"));
}

struct ParseIntCase
{
    const char *text;
    bool ok;
    long long value;
};

class ParseIntTest : public ::testing::TestWithParam<ParseIntCase>
{};

TEST_P(ParseIntTest, Parses)
{
    const auto &c = GetParam();
    long long v = -1;
    EXPECT_EQ(parseInt(c.text, v), c.ok);
    if (c.ok) {
        EXPECT_EQ(v, c.value);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParseIntTest,
    ::testing::Values(ParseIntCase{"42", true, 42},
                      ParseIntCase{"-7", true, -7},
                      ParseIntCase{"0x10", true, 16},
                      ParseIntCase{"  25600 ", true, 25600},
                      ParseIntCase{"", false, 0},
                      ParseIntCase{"abc", false, 0},
                      ParseIntCase{"12x", false, 0},
                      ParseIntCase{"40000", true, 40000}));

// --------------------------------------------------------------- bitfield

TEST(Bitfield, Bits)
{
    EXPECT_EQ(bits(0xff00, 15, 8), 0xffu);
    EXPECT_EQ(bits(0xff00, 7, 0), 0u);
    EXPECT_EQ(bits(~std::uint64_t{0}, 63, 0), ~std::uint64_t{0});
    EXPECT_EQ(bits(0b1010, 3, 3), 1u);
}

TEST(Bitfield, InsertBits)
{
    EXPECT_EQ(insertBits(0, 15, 8, 0xab), 0xab00u);
    EXPECT_EQ(insertBits(0xffff, 7, 0, 0), 0xff00u);
    // Field is masked to width.
    EXPECT_EQ(insertBits(0, 3, 0, 0x1ff), 0xfu);
}

TEST(Bitfield, RoundTrip)
{
    for (unsigned first = 0; first < 60; first += 7) {
        unsigned last = first + 4;
        std::uint64_t v = insertBits(0x123456789abcdef0ULL, last, first,
                                     0x15);
        EXPECT_EQ(bits(v, last, first), 0x15u);
    }
}

TEST(Bitfield, SignExtend)
{
    EXPECT_EQ(signExtend(0xff, 8), -1);
    EXPECT_EQ(signExtend(0x7f, 8), 127);
    EXPECT_EQ(signExtend(0x80, 8), -128);
    EXPECT_EQ(signExtend(0xffffffffULL, 32), -1);
    EXPECT_EQ(signExtend(5, 32), 5);
}

} // namespace
} // namespace quma
