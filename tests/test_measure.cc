/**
 * @file
 * Unit tests for the measurement subsystem: MDU calibration and
 * discrimination, trigger/trace ordering, the digital output unit,
 * and the data collection unit.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "measure/datacollector.hh"
#include "measure/digitaloutput.hh"
#include "measure/mdu.hh"

namespace quma::measure {
namespace {

qsim::ReadoutParams
cleanReadout()
{
    qsim::ReadoutParams rp;
    rp.c0 = {30.0, 0.0};
    rp.c1 = {-30.0, 0.0};
    rp.noiseSigma = 0.0;
    return rp;
}

// -------------------------------------------------------------------- MDU

TEST(MduCalibration, SeparatesStates)
{
    auto cal = calibrateMdu(cleanReadout(), 1500);
    EXPECT_LT(cal.s0, cal.threshold);
    EXPECT_GT(cal.s1, cal.threshold);
    EXPECT_GT(cal.s1 - cal.s0, 0.0);
}

TEST(MduCalibration, RejectsTinyWindow)
{
    setLogQuiet(true);
    EXPECT_THROW(calibrateMdu(cleanReadout(), 1), quma::FatalError);
    setLogQuiet(false);
}

TEST(Mdu, DiscriminatesNoiselessTraces)
{
    auto rp = cleanReadout();
    Mdu mdu(calibrateMdu(rp, 1500));
    Rng rng(1);
    auto t0 = qsim::simulateReadout(rp, false, 1500, 1e12, rng);
    auto t1 = qsim::simulateReadout(rp, true, 1500, 1e12, rng);
    EXPECT_FALSE(mdu.integrate(t0.trace).second);
    EXPECT_TRUE(mdu.integrate(t1.trace).second);
}

TEST(Mdu, HighNoiseStillMostlyCorrect)
{
    auto rp = cleanReadout();
    rp.noiseSigma = 150.0;
    Mdu mdu(calibrateMdu(rp, 1500));
    Rng rng(7);
    int correct = 0;
    const int shots = 400;
    for (int s = 0; s < shots; ++s) {
        bool one = s % 2 == 1;
        auto t = qsim::simulateReadout(rp, one, 1500, 1e12, rng);
        correct += mdu.integrate(t.trace).second == one;
    }
    EXPECT_GT(correct, shots * 90 / 100);
}

TEST(Mdu, TraceThenTriggerCompletesAfterLatency)
{
    auto rp = cleanReadout();
    Mdu mdu(calibrateMdu(rp, 1500), /*latency=*/100);
    Rng rng(1);
    std::vector<MduResult> results;
    mdu.setResultSink(
        [&](const MduResult &r) { results.push_back(r); });

    auto t = qsim::simulateReadout(rp, true, 1500, 1e12, rng);
    mdu.submitTrace(t.trace, /*td=*/1000, /*duration=*/300);
    EXPECT_TRUE(mdu.hasPendingTrace());
    mdu.discriminate(1000, 7, 0x1);
    ASSERT_TRUE(mdu.nextEventCycle().has_value());
    // Window [1000, 1300] plus 100 cycles of latency.
    EXPECT_EQ(*mdu.nextEventCycle(), 1400u);
    mdu.advanceTo(1399);
    EXPECT_TRUE(results.empty());
    mdu.advanceTo(1400);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].bit);
    EXPECT_EQ(results[0].destReg, 7);
    EXPECT_EQ(results[0].completionCycle, 1400u);
}

TEST(Mdu, TriggerBeforeTraceArms)
{
    auto rp = cleanReadout();
    Mdu mdu(calibrateMdu(rp, 1500), 100);
    Rng rng(1);
    std::vector<MduResult> results;
    mdu.setResultSink(
        [&](const MduResult &r) { results.push_back(r); });

    mdu.discriminate(1000, 5, 0x1);
    EXPECT_TRUE(mdu.armed());
    auto t = qsim::simulateReadout(rp, false, 1500, 1e12, rng);
    mdu.submitTrace(t.trace, 1018, 300);
    EXPECT_FALSE(mdu.armed());
    // Window ends at 1318, plus latency.
    EXPECT_EQ(*mdu.nextEventCycle(), 1418u);
    mdu.advanceTo(2000);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].bit);
}

TEST(Mdu, DoubleTriggerIsFatal)
{
    setLogQuiet(true);
    Mdu mdu(calibrateMdu(cleanReadout(), 1500), 100);
    mdu.discriminate(0, 1, 0x1);
    EXPECT_THROW(mdu.discriminate(5, 1, 0x1), quma::FatalError);
    setLogQuiet(false);
}

TEST(Mdu, DoubleTraceIsFatal)
{
    setLogQuiet(true);
    auto rp = cleanReadout();
    Mdu mdu(calibrateMdu(rp, 1500), 100);
    Rng rng(1);
    auto t = qsim::simulateReadout(rp, false, 1500, 1e12, rng);
    mdu.submitTrace(t.trace, 0, 300);
    EXPECT_THROW(mdu.submitTrace(t.trace, 400, 300),
                 quma::FatalError);
    setLogQuiet(false);
}

// --------------------------------------------------------- digital output

TEST(DigitalOutput, RaisesMarkersForMask)
{
    DigitalOutputUnit dig(8, 6.849e9);
    std::vector<std::pair<unsigned, signal::MeasurementPulse>> pulses;
    dig.setPulseSink([&](unsigned q, const signal::MeasurementPulse &p) {
        pulses.emplace_back(q, p);
    });
    dig.fire(0b101, 100, 300);
    dig.advanceTo(100);
    ASSERT_EQ(pulses.size(), 2u);
    EXPECT_EQ(pulses[0].first, 0u);
    EXPECT_EQ(pulses[1].first, 2u);
    EXPECT_EQ(pulses[0].second.t0Ns, 500);
    EXPECT_EQ(pulses[0].second.durationNs, 1500);
    ASSERT_EQ(dig.markers().size(), 2u);
    EXPECT_EQ(dig.markers()[0],
              (MarkerWindow{0, 100, 300}));
}

TEST(DigitalOutput, DeliveryIsScheduled)
{
    DigitalOutputUnit dig;
    int delivered = 0;
    dig.setPulseSink(
        [&](unsigned, const signal::MeasurementPulse &) {
            ++delivered;
        });
    dig.fire(0x1, 500, 300);
    EXPECT_EQ(*dig.nextEventCycle(), 500u);
    dig.advanceTo(499);
    EXPECT_EQ(delivered, 0);
    dig.advanceTo(500);
    EXPECT_EQ(delivered, 1);
    EXPECT_FALSE(dig.nextEventCycle().has_value());
}

TEST(DigitalOutput, RejectsZeroDuration)
{
    setLogQuiet(true);
    DigitalOutputUnit dig;
    EXPECT_THROW(dig.fire(0x1, 0, 0), quma::FatalError);
    setLogQuiet(false);
}

// ---------------------------------------------------------- data collector

TEST(DataCollector, RoundRobinBinning)
{
    DataCollectionUnit dcu;
    dcu.configure(3);
    // Two rounds: bins get (1,4), (2,5), (3,6).
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0})
        dcu.addSample(v);
    EXPECT_EQ(dcu.completedRounds(), 2u);
    auto avg = dcu.averages();
    ASSERT_EQ(avg.size(), 3u);
    EXPECT_DOUBLE_EQ(avg[0], 2.5);
    EXPECT_DOUBLE_EQ(avg[1], 3.5);
    EXPECT_DOUBLE_EQ(avg[2], 4.5);
}

TEST(DataCollector, PartialRound)
{
    DataCollectionUnit dcu;
    dcu.configure(2);
    dcu.addSample(10.0);
    dcu.addSample(20.0);
    dcu.addSample(30.0);
    auto avg = dcu.averages();
    EXPECT_DOUBLE_EQ(avg[0], 20.0);
    EXPECT_DOUBLE_EQ(avg[1], 20.0);
    EXPECT_EQ(dcu.completedRounds(), 1u);
}

TEST(DataCollector, BitAverages)
{
    DataCollectionUnit dcu;
    dcu.configure(2);
    dcu.addBit(true);
    dcu.addBit(false);
    dcu.addBit(true);
    dcu.addBit(false);
    auto avg = dcu.bitAverages();
    EXPECT_DOUBLE_EQ(avg[0], 1.0);
    EXPECT_DOUBLE_EQ(avg[1], 0.0);
}

TEST(DataCollector, UnconfiguredIsFatal)
{
    setLogQuiet(true);
    DataCollectionUnit dcu;
    EXPECT_THROW(dcu.addSample(1.0), quma::PanicError);
    setLogQuiet(false);
}

} // namespace
} // namespace quma::measure
