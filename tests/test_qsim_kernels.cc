/**
 * @file
 * Equivalence and allocation tests for the hot-path kernel overhaul:
 * the fused density-matrix conjugations and the closed-form
 * idle/diagonal fast paths must agree with naive matrix references and
 * the generic Kraus machinery to 1e-12; the phasor-recurrence signal
 * chain must match direct per-sample sin/cos loops; the ziggurat
 * gaussian must produce standard-normal statistics; and none of the
 * steady-state kernels may touch the heap.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <complex>
#include <cstdlib>
#include <new>
#include <numbers>
#include <vector>

#include "common/rng.hh"
#include "measure/mdu.hh"
#include "qsim/channels.hh"
#include "qsim/density.hh"
#include "qsim/readout.hh"
#include "qsim/transmon.hh"
#include "signal/modulation.hh"
#include "signal/phasor.hh"

// ------------------------------------------------------------ alloc probe
//
// Global operator new replacement counting allocations while
// g_countAllocs is set. The zero-allocation guarantees of the kernel
// overhaul are verified with this counter, not by inspection.

namespace {
std::atomic<std::uint64_t> g_allocCount{0};
std::atomic<bool> g_countAllocs{false};
} // namespace

// The replaced operators pair malloc with free consistently; GCC
// cannot see that and reports a mismatched allocation function.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void *
operator new(std::size_t size)
{
    if (g_countAllocs.load(std::memory_order_relaxed))
        g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

#pragma GCC diagnostic pop

namespace quma::qsim {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

// ------------------------------------------------------- naive references

using FullMatrix = std::vector<Complex>;

/** Expand a single-qubit operator to the full 2^nq space. */
FullMatrix
embed1(unsigned nq, unsigned q, const Mat2 &u)
{
    std::size_t n = std::size_t{1} << nq;
    std::size_t mask = std::size_t{1} << q;
    FullMatrix m(n * n, Complex{0, 0});
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            if ((i & ~mask) != (j & ~mask))
                continue;
            unsigned bi = (i & mask) ? 1 : 0;
            unsigned bj = (j & mask) ? 1 : 0;
            m[i * n + j] = u[bi * 2 + bj];
        }
    return m;
}

/** Expand a two-qubit operator to the full 2^nq space. */
FullMatrix
embed2(unsigned nq, unsigned q_high, unsigned q_low, const Mat4 &u)
{
    std::size_t n = std::size_t{1} << nq;
    std::size_t mh = std::size_t{1} << q_high;
    std::size_t ml = std::size_t{1} << q_low;
    std::size_t rest = ~(mh | ml);
    FullMatrix m(n * n, Complex{0, 0});
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            if ((i & rest) != (j & rest))
                continue;
            unsigned ri = ((i & mh) ? 2 : 0) | ((i & ml) ? 1 : 0);
            unsigned cj = ((j & mh) ? 2 : 0) | ((j & ml) ? 1 : 0);
            m[i * n + j] = u[ri * 4 + cj];
        }
    return m;
}

FullMatrix
matmulFull(const FullMatrix &a, const FullMatrix &b, std::size_t n)
{
    FullMatrix out(n * n, Complex{0, 0});
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t k = 0; k < n; ++k) {
            Complex aik = a[i * n + k];
            if (aik == Complex{0, 0})
                continue;
            for (std::size_t j = 0; j < n; ++j)
                out[i * n + j] += aik * b[k * n + j];
        }
    return out;
}

FullMatrix
adjointFull(const FullMatrix &a, std::size_t n)
{
    FullMatrix out(n * n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            out[i * n + j] = std::conj(a[j * n + i]);
    return out;
}

FullMatrix
densityToFull(const DensityMatrix &rho)
{
    std::size_t n = rho.dim();
    FullMatrix out(n * n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            out[i * n + j] = rho.element(i, j);
    return out;
}

double
maxAbsDiff(const DensityMatrix &rho, const FullMatrix &ref)
{
    std::size_t n = rho.dim();
    double worst = 0;
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            worst = std::max(worst,
                             std::abs(rho.element(i, j) - ref[i * n + j]));
    return worst;
}

double
maxAbsDiff(const DensityMatrix &a, const DensityMatrix &b)
{
    std::size_t n = a.dim();
    double worst = 0;
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            worst = std::max(worst,
                             std::abs(a.element(i, j) - b.element(i, j)));
    return worst;
}

/** A seeded, entangled, slightly mixed state exercising all elements. */
DensityMatrix
randomState(unsigned nq, Rng &rng)
{
    DensityMatrix rho(nq);
    for (unsigned q = 0; q < nq; ++q)
        rho.apply1(q, gates::raxis(rng.uniform(0.0, kTwoPi),
                                   rng.uniform(0.0, kTwoPi)));
    for (unsigned q = 0; q + 1 < nq; ++q)
        rho.apply2(q + 1, q, gates::cnot());
    for (unsigned q = 0; q < nq; ++q)
        rho.applyKraus1(q, depolarizing(rng.uniform(0.0, 0.2)));
    return rho;
}

// ------------------------------------------------- fused kernel equivalence

TEST(FusedKernels, Apply1MatchesNaiveConjugation)
{
    Rng rng(0xfeed1);
    for (unsigned nq : {1u, 2u, 3u, 5u}) {
        for (int trial = 0; trial < 4; ++trial) {
            DensityMatrix rho = randomState(nq, rng);
            unsigned q = static_cast<unsigned>(
                rng.uniformInt(0, nq - 1));
            Mat2 u = gates::raxis(rng.uniform(0.0, kTwoPi),
                                  rng.uniform(0.0, kTwoPi));
            std::size_t n = rho.dim();
            FullMatrix uf = embed1(nq, q, u);
            FullMatrix ref = matmulFull(
                matmulFull(uf, densityToFull(rho), n),
                adjointFull(uf, n), n);
            rho.apply1(q, u);
            EXPECT_LT(maxAbsDiff(rho, ref), 1e-12);
        }
    }
}

TEST(FusedKernels, Apply2MatchesNaiveConjugation)
{
    Rng rng(0xfeed2);
    for (unsigned nq : {2u, 3u, 5u}) {
        for (int trial = 0; trial < 4; ++trial) {
            DensityMatrix rho = randomState(nq, rng);
            unsigned a = static_cast<unsigned>(
                rng.uniformInt(0, nq - 1));
            unsigned b = (a + 1 + static_cast<unsigned>(rng.uniformInt(
                                      0, nq - 2))) %
                         nq;
            unsigned hi = std::max(a, b), lo = std::min(a, b);
            Mat4 u = trial % 2 == 0
                         ? gates::cnot()
                         : kron(gates::raxis(0.3, 1.1),
                                gates::raxis(2.2, 0.7));
            std::size_t n = rho.dim();
            FullMatrix uf = embed2(nq, hi, lo, u);
            FullMatrix ref = matmulFull(
                matmulFull(uf, densityToFull(rho), n),
                adjointFull(uf, n), n);
            rho.apply2(hi, lo, u);
            EXPECT_LT(maxAbsDiff(rho, ref), 1e-12);
        }
    }
}

TEST(FusedKernels, KrausMatchesNaiveSum)
{
    Rng rng(0xfeed3);
    for (unsigned nq : {1u, 3u, 4u}) {
        DensityMatrix rho = randomState(nq, rng);
        auto kraus = idleChannel(250.0, 30000.0, 25000.0);
        std::size_t n = rho.dim();
        FullMatrix start = densityToFull(rho);
        FullMatrix ref(n * n, Complex{0, 0});
        for (const Mat2 &k : kraus) {
            unsigned q = 1 % nq;
            FullMatrix kf = embed1(nq, q, k);
            FullMatrix term = matmulFull(matmulFull(kf, start, n),
                                         adjointFull(kf, n), n);
            for (std::size_t i = 0; i < n * n; ++i)
                ref[i] += term[i];
        }
        rho.applyKraus1(1 % nq, kraus);
        EXPECT_LT(maxAbsDiff(rho, ref), 1e-12);
    }
}

// --------------------------------------------- closed-form channel paths

TEST(ClosedFormPaths, IdleMatchesGenericKrausPlusRz)
{
    Rng rng(0xfeed4);
    for (unsigned nq : {1u, 2u, 4u}) {
        for (int trial = 0; trial < 6; ++trial) {
            DensityMatrix fast = randomState(nq, rng);
            DensityMatrix slow = fast;
            unsigned q = static_cast<unsigned>(
                rng.uniformInt(0, nq - 1));
            double dt = rng.uniform(1.0, 5000.0);
            double t1 = 30000.0, t2 = 22000.0;
            double phase = rng.uniform(-1.0, 1.0);

            IdleChannelParams p = idleChannelParams(dt, t1, t2);
            fast.applyIdle(q, p.gamma, p.lambda, phase);

            slow.applyKraus1(q, idleChannel(dt, t1, t2));
            slow.apply1(q, gates::rz(phase));

            EXPECT_LT(maxAbsDiff(fast, slow), 1e-12)
                << "nq=" << nq << " q=" << q << " dt=" << dt;
        }
    }
}

TEST(ClosedFormPaths, IdleAtT2LimitHasNoPureDephasing)
{
    // T2 = 2 T1: lambda must vanish and coherence decay follow T1 only.
    IdleChannelParams p = idleChannelParams(100.0, 10000.0, 20000.0);
    EXPECT_DOUBLE_EQ(p.lambda, 0.0);
    EXPECT_NEAR(p.gamma, 1.0 - std::exp(-100.0 / 10000.0), 1e-15);
}

TEST(ClosedFormPaths, RzFastPathMatchesConjugation)
{
    Rng rng(0xfeed5);
    for (unsigned nq : {1u, 3u, 5u}) {
        for (int trial = 0; trial < 4; ++trial) {
            DensityMatrix fast = randomState(nq, rng);
            DensityMatrix slow = fast;
            unsigned q = static_cast<unsigned>(
                rng.uniformInt(0, nq - 1));
            double theta = rng.uniform(-8.0, 8.0);
            fast.applyRz(q, theta);
            slow.apply1(q, gates::rz(theta));
            EXPECT_LT(maxAbsDiff(fast, slow), 1e-12);
        }
    }
}

TEST(ClosedFormPaths, CzFastPathMatchesConjugation)
{
    Rng rng(0xfeed6);
    for (unsigned nq : {2u, 4u, 6u}) {
        DensityMatrix fast = randomState(nq, rng);
        DensityMatrix slow = fast;
        unsigned lo = static_cast<unsigned>(rng.uniformInt(0, nq - 2));
        unsigned hi = nq - 1;
        fast.applyCzPhase(lo, hi);
        slow.apply2(hi, lo, gates::cz());
        EXPECT_LT(maxAbsDiff(fast, slow), 1e-12);
    }
}

TEST(ClosedFormPaths, ResetQubitMatchesKrausChannel)
{
    Rng rng(0xfeed7);
    for (unsigned nq : {1u, 2u, 4u}) {
        DensityMatrix fast = randomState(nq, rng);
        DensityMatrix slow = fast;
        unsigned q = static_cast<unsigned>(rng.uniformInt(0, nq - 1));
        fast.resetQubit(q);
        slow.applyKraus1(
            q, {Mat2{Complex{1, 0}, {0, 0}, {0, 0}, {0, 0}},
                Mat2{Complex{0, 0}, {1, 0}, {0, 0}, {0, 0}}});
        EXPECT_LT(maxAbsDiff(fast, slow), 1e-14);
        EXPECT_NEAR(fast.probabilityOne(q), 0.0, 1e-14);
        EXPECT_NEAR(fast.trace(), 1.0, 1e-12);
    }
}

// ----------------------------------------------------- phasor recurrence

TEST(Phasor, TracksDirectEvaluationOverLongWindows)
{
    // At 100k steps the absolute phase reaches ~24500 rad, where one
    // ulp of the reference's own argument is already ~4e-12; the bound
    // covers a few ulps of that, not recurrence drift (which the
    // resync keeps well below it -- see the small-phase test).
    const double phi0 = 0.7321, dphi = 0.2451;
    signal::Phasor ph(phi0, dphi);
    double worst = 0;
    for (std::size_t k = 0; k < 100000; ++k) {
        double arg = phi0 + static_cast<double>(k) * dphi;
        worst = std::max(worst,
                         std::abs(ph.value() - std::polar(1.0, arg)));
        ph.advance();
    }
    EXPECT_LT(worst, 2e-11);
}

TEST(Phasor, SmallPhaseDriftStaysAtMachinePrecision)
{
    const double phi0 = 0.125, dphi = 1e-3;
    signal::Phasor ph(phi0, dphi);
    double worst = 0;
    for (std::size_t k = 0; k < 100000; ++k) {
        double arg = phi0 + static_cast<double>(k) * dphi;
        worst = std::max(worst,
                         std::abs(ph.value() - std::polar(1.0, arg)));
        ph.advance();
    }
    EXPECT_LT(worst, 1e-12);
}

TEST(Phasor, HandlesNegativeFrequency)
{
    signal::Phasor ph(-0.4, -0.313);
    for (std::size_t k = 0; k < 3000; ++k) {
        double arg = -0.4 - static_cast<double>(k) * 0.313;
        ASSERT_NEAR(std::abs(ph.value() - std::polar(1.0, arg)), 0.0,
                    1e-12);
        ph.advance();
    }
}

TEST(PhasorChain, DemodulateMatchesDirectSinCosLoop)
{
    Rng rng(0x2b00);
    std::vector<double> samples(750);
    for (auto &s : samples)
        s = rng.uniform(-100.0, 100.0);
    signal::Waveform trace(samples, kAdcSampleRateHz);

    double f = 40.0e6, t0 = 35.0;
    auto z = signal::demodulate(trace, f, t0);

    double dt_ns = 1e9 / trace.rateHz();
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t k = 0; k < trace.size(); ++k) {
        double t_s = (t0 + (static_cast<double>(k) + 0.5) * dt_ns) * 1e-9;
        double arg = kTwoPi * f * t_s;
        acc += trace[k] *
               std::complex<double>(std::cos(arg), -std::sin(arg));
    }
    acc *= 2.0 / static_cast<double>(trace.size());
    EXPECT_NEAR(std::abs(z - acc), 0.0, 1e-9);
}

TEST(PhasorChain, SsbModulateMatchesDirectSinCosLoop)
{
    std::vector<double> env(500);
    for (std::size_t k = 0; k < env.size(); ++k)
        env[k] = std::exp(-0.5 * (static_cast<double>(k) - 250.0) *
                          (static_cast<double>(k) - 250.0) / 2500.0);
    signal::Waveform base(env, kAwgSampleRateHz);
    double fssb = -50e6, t0 = 120.0, phi = 0.31;
    auto [i, q] = signal::ssbModulate(base, fssb, t0, phi);

    double dt_ns = 1e9 / base.rateHz();
    for (std::size_t k = 0; k < base.size(); ++k) {
        double t_s = (t0 + (static_cast<double>(k) + 0.5) * dt_ns) * 1e-9;
        double arg = kTwoPi * fssb * t_s + phi;
        ASSERT_NEAR(i[k], base[k] * std::cos(arg), 1e-11);
        ASSERT_NEAR(q[k], base[k] * std::sin(arg), 1e-11);
    }
}

TEST(PhasorChain, CalibrateMduMatchesDirectSinCosLoop)
{
    auto rp = paperQubitParams().readout;
    auto cal = measure::calibrateMdu(rp, 1500);

    double dt_ns = 1e9 / rp.adcRateHz;
    auto n = static_cast<std::size_t>(1500.0 / dt_ns);
    ASSERT_EQ(cal.weights.size(), n);
    double s0 = 0, s1 = 0;
    std::vector<double> weights(n);
    for (std::size_t k = 0; k < n; ++k) {
        double t_s = ((static_cast<double>(k) + 0.5) * dt_ns) * 1e-9;
        double arg = kTwoPi * rp.ifHz * t_s;
        double v0 = rp.c0.real() * std::cos(arg) -
                    rp.c0.imag() * std::sin(arg);
        double v1 = rp.c1.real() * std::cos(arg) -
                    rp.c1.imag() * std::sin(arg);
        weights[k] = v1 - v0;
        s0 += v0 * weights[k];
        s1 += v1 * weights[k];
    }
    double scale = 1.0 / static_cast<double>(n);
    for (std::size_t k = 0; k < n; ++k)
        EXPECT_NEAR(cal.weights[k], weights[k] * scale, 1e-10);
    EXPECT_NEAR(cal.s0, s0 * scale, 1e-8);
    EXPECT_NEAR(cal.s1, s1 * scale, 1e-8);
}

TEST(PhasorChain, ReadoutToneMatchesDirectSinCosLoop)
{
    auto rp = paperQubitParams().readout;
    rp.noiseSigma = 0.0; // isolate the deterministic tone
    Rng rng(0x77);
    auto trace = simulateReadout(rp, false, 1500, 30000.0, rng);

    double dt_ns = 1e9 / rp.adcRateHz;
    for (std::size_t k = 0; k < trace.trace.size(); ++k) {
        double t_s = ((static_cast<double>(k) + 0.5) * dt_ns) * 1e-9;
        double arg = kTwoPi * rp.ifHz * t_s;
        double v = rp.c0.real() * std::cos(arg) -
                   rp.c0.imag() * std::sin(arg);
        ASSERT_NEAR(trace.trace[k], v, 1e-10);
    }
}

// ------------------------------------------------------ ziggurat gaussian

TEST(ZigguratGaussian, StandardNormalStatistics)
{
    Rng rng(0x5eed);
    const std::size_t n = 400000;
    double sum = 0, sumSq = 0, sumCube = 0;
    std::size_t within1 = 0, beyondTail = 0;
    for (std::size_t i = 0; i < n; ++i) {
        double x = rng.gaussian();
        sum += x;
        sumSq += x * x;
        sumCube += x * x * x;
        if (std::abs(x) <= 1.0)
            ++within1;
        if (std::abs(x) > 3.6541528853610088)
            ++beyondTail;
    }
    double mean = sum / static_cast<double>(n);
    double var = sumSq / static_cast<double>(n) - mean * mean;
    double skew = sumCube / static_cast<double>(n);
    EXPECT_NEAR(mean, 0.0, 0.01);
    EXPECT_NEAR(var, 1.0, 0.015);
    EXPECT_NEAR(skew, 0.0, 0.03);
    EXPECT_NEAR(static_cast<double>(within1) / static_cast<double>(n),
                0.6827, 0.005);
    // The tail beyond the ziggurat cut-off must be populated with the
    // right mass: 2 * (1 - Phi(r)) ~ 2.58e-4.
    EXPECT_GT(beyondTail, 20u);
    EXPECT_LT(beyondTail, 250u);
}

TEST(ZigguratGaussian, MeanAndScaleApplied)
{
    Rng rng(0xabc);
    double sum = 0;
    const std::size_t n = 100000;
    for (std::size_t i = 0; i < n; ++i)
        sum += rng.gaussian(5.0, 0.5);
    EXPECT_NEAR(sum / static_cast<double>(n), 5.0, 0.02);
}

TEST(ZigguratGaussian, DeterministicInSeed)
{
    Rng a(0x1234), b(0x1234);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.gaussian(), b.gaussian());
    Rng c(0x1235);
    bool differs = false;
    Rng d(0x1234);
    for (int i = 0; i < 100; ++i)
        differs |= (c.gaussian() != d.gaussian());
    EXPECT_TRUE(differs);
}

// -------------------------------------------------------- zero allocation

TEST(Allocation, SteadyStateDensityKernelsDoNotAllocate)
{
    DensityMatrix rho(4);
    auto chan = idleChannel(80.0, 30000.0, 25000.0);
    auto icp = idleChannelParams(80.0, 30000.0, 25000.0);
    Mat2 h = gates::hadamard();
    rho.apply1(0, h);
    rho.applyKraus1(0, chan); // first call sizes the persistent scratch

    g_allocCount.store(0);
    g_countAllocs.store(true);
    rho.apply1(1, h);
    rho.applyRz(2, 0.3);
    rho.applyCzPhase(0, 3);
    rho.applyIdle(1, icp.gamma, icp.lambda, 0.01);
    rho.applyKraus1(1, chan);
    rho.resetQubit(2);
    g_countAllocs.store(false);
    EXPECT_EQ(g_allocCount.load(), 0u);
}

TEST(Allocation, IdleEvolutionPathDoesNotAllocate)
{
    TransmonChip chip({paperQubitParams(), paperQubitParams()});
    chip.newRound();
    chip.advanceTo(100);

    g_allocCount.store(0);
    g_countAllocs.store(true);
    chip.advanceTo(5000);
    chip.advanceTo(20000);
    g_countAllocs.store(false);
    EXPECT_EQ(g_allocCount.load(), 0u);
}

} // namespace
} // namespace quma::qsim
