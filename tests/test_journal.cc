/**
 * @file
 * Durability tests: the write-ahead job journal (record container,
 * recovery semantics, crash-recovery determinism across scheduler
 * shapes, corruption/truncation fuzz) and the capture/replay pair
 * (live round-trip, tamper detection, the checked-in golden AllXY
 * session). See docs/durability.md for the contracts pinned here.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "experiments/allxy.hh"
#include "net/capture.hh"
#include "net/client.hh"
#include "net/replay.hh"
#include "net/server.hh"
#include "net/transport.hh"
#include "net/wire.hh"
#include "runtime/journal.hh"
#include "runtime/service.hh"

#ifndef QUMA_TEST_DATA_DIR
#define QUMA_TEST_DATA_DIR "tests/data"
#endif

namespace quma::runtime {
namespace {

/** A small averaged measurement program (rounds x X180-measure). */
std::string
shotProgram(unsigned rounds)
{
    return R"(
        mov r15, 40000
        mov r1, 0
        mov r2, )" +
           std::to_string(rounds) + R"(
        L:
        QNopReg r15
        Pulse {q0}, X180
        Wait 4
        MPG {q0}, 300
        MD {q0}, r7
        Wait 600
        addi r1, r1, 1
        bne r1, r2, L
        halt
    )";
}

JobSpec
shotJob(unsigned rounds, std::uint64_t seed)
{
    JobSpec job;
    job.name = "shots";
    job.assembly = shotProgram(rounds);
    job.bins = 1;
    job.seed = seed;
    job.maxCycles = 50'000'000;
    return job;
}

/** The 32-round sharded job the crash matrix re-runs everywhere. */
JobSpec
matrixJob(std::size_t shards, std::uint64_t seed)
{
    JobSpec job = shotJob(1, seed); // one-round body
    job.rounds = 32;
    job.shards = shards;
    job.minRoundsPerShard = 8;
    return job;
}

/** Fresh path under the gtest temp dir; never reused across calls. */
std::string
tempPath(const std::string &tag)
{
    static std::atomic<unsigned> counter{0};
    return testing::TempDir() + "quma_" + tag + "_" +
           std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1));
}

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path,
               const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/** Spin (bounded) until `pred` holds; completion markers are
 *  appended by the scheduler's notifier thread, so tests that want
 *  them on disk must wait for the append, not just the result. */
bool
waitFor(const std::function<bool()> &pred,
        std::chrono::milliseconds limit = std::chrono::seconds(10))
{
    const auto deadline = std::chrono::steady_clock::now() + limit;
    while (!pred()) {
        if (std::chrono::steady_clock::now() > deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
}

// --- the shared record container --------------------------------------------

TEST(RecordContainer, Crc32MatchesTheIeeeCheckValue)
{
    // The canonical CRC-32 check value: crc("123456789").
    const std::uint8_t check[] = {'1', '2', '3', '4', '5',
                                  '6', '7', '8', '9'};
    EXPECT_EQ(crc32(check, sizeof check), 0xCBF43926u);
    EXPECT_EQ(crc32(nullptr, 0), 0x00000000u);
}

TEST(RecordContainer, RecordsRoundTripThroughScan)
{
    std::vector<std::uint8_t> bytes(kJournalMagic.begin(),
                                    kJournalMagic.end());
    appendRecord(bytes, 7, {0xDE, 0xAD});
    appendRecord(bytes, 42, {});
    appendRecord(bytes, 0xBEEF, {1, 2, 3, 4, 5});

    ScanResult scan = scanRecords(bytes, kJournalMagic);
    EXPECT_TRUE(scan.magicValid);
    EXPECT_EQ(scan.corruptRecords, 0u);
    ASSERT_EQ(scan.records.size(), 3u);
    EXPECT_EQ(scan.records[0].type, 7u);
    EXPECT_EQ(scan.records[0].payload,
              (std::vector<std::uint8_t>{0xDE, 0xAD}));
    EXPECT_EQ(scan.records[1].type, 42u);
    EXPECT_TRUE(scan.records[1].payload.empty());
    EXPECT_EQ(scan.records[2].type, 0xBEEFu);
    EXPECT_EQ(scan.records[2].payload.size(), 5u);
}

TEST(RecordContainer, ForeignMagicYieldsNothing)
{
    std::vector<std::uint8_t> foreign{'P', 'N', 'G', '!', 0, 1, 2, 3};
    appendRecord(foreign, 1, {9});
    ScanResult scan = scanRecords(foreign, kJournalMagic);
    EXPECT_FALSE(scan.magicValid);
    EXPECT_EQ(scan.corruptRecords, 1u);
    EXPECT_TRUE(scan.records.empty());

    // An EMPTY byte stream is merely not-a-record-file-yet.
    ScanResult empty = scanRecords({}, kJournalMagic);
    EXPECT_FALSE(empty.magicValid);
    EXPECT_EQ(empty.corruptRecords, 0u);
}

// --- journal append + recovery semantics ------------------------------------

TEST(Journal, MissingFileIsAFreshJournal)
{
    RecoveryReport rec = recoverJournal(tempPath("missing"));
    EXPECT_FALSE(rec.journalExisted);
    EXPECT_TRUE(rec.pending.empty());
    EXPECT_EQ(rec.corruptRecords, 0u);
}

TEST(Journal, SubmittedWithoutCompletionIsPending)
{
    const std::string path = tempPath("pending");
    JobSpec spec = matrixJob(2, 0xFEED);
    {
        JobJournal journal({path, FsyncPolicy::Batch});
        auto encoded = JobJournal::encodeSpec(spec);
        ASSERT_TRUE(encoded.has_value());
        journal.appendSubmitted(17, *encoded);
        journal.sync();
    } // close() on destruction

    RecoveryReport rec = recoverJournal(path);
    EXPECT_TRUE(rec.journalExisted);
    EXPECT_TRUE(rec.magicValid);
    EXPECT_EQ(rec.submitted, 1u);
    ASSERT_EQ(rec.pending.size(), 1u);
    EXPECT_EQ(rec.pending[0].journalId, 17u);

    // The spec round-trips through the wire codec exactly.
    const JobSpec &back = rec.pending[0].spec;
    EXPECT_EQ(back.name, spec.name);
    EXPECT_EQ(back.assembly, spec.assembly);
    EXPECT_EQ(back.bins, spec.bins);
    EXPECT_EQ(back.seed, spec.seed);
    EXPECT_EQ(back.rounds, spec.rounds);
    EXPECT_EQ(back.shards, spec.shards);
    EXPECT_EQ(back.minRoundsPerShard, spec.minRoundsPerShard);
    std::remove(path.c_str());
}

TEST(Journal, CompletedAndCancelledRetirePendingEntries)
{
    const std::string path = tempPath("retire");
    auto encoded = *JobJournal::encodeSpec(shotJob(1, 1));
    {
        JobJournal journal({path, FsyncPolicy::Batch});
        journal.appendSubmitted(1, encoded);
        journal.appendSubmitted(2, encoded);
        journal.appendSubmitted(3, encoded);
        journal.appendCompleted(1, /*failed=*/false);
        journal.appendCancelled(2);
        journal.appendCompleted(99, /*failed=*/true); // unknown: harmless
        journal.sync();
    }
    RecoveryReport rec = recoverJournal(path);
    EXPECT_EQ(rec.recordsScanned, 6u);
    EXPECT_EQ(rec.submitted, 3u);
    EXPECT_EQ(rec.completed, 2u);
    EXPECT_EQ(rec.cancelled, 1u);
    ASSERT_EQ(rec.pending.size(), 1u);
    EXPECT_EQ(rec.pending[0].journalId, 3u);
    std::remove(path.c_str());
}

TEST(Journal, ResubmittedRetiresTheOldIdAndOpensTheNewOne)
{
    const std::string path = tempPath("resubmit");
    auto encoded = *JobJournal::encodeSpec(shotJob(1, 2));
    {
        JobJournal journal({path, FsyncPolicy::Batch});
        journal.appendSubmitted(5, encoded);
        journal.appendResubmitted(5, 9, encoded);
        journal.sync();
    }
    {
        RecoveryReport rec = recoverJournal(path);
        EXPECT_EQ(rec.resubmitted, 1u);
        ASSERT_EQ(rec.pending.size(), 1u);
        EXPECT_EQ(rec.pending[0].journalId, 9u);
    }
    {
        JobJournal journal({path, FsyncPolicy::Batch});
        journal.appendCompleted(9, false);
        journal.sync();
    }
    RecoveryReport rec = recoverJournal(path);
    EXPECT_TRUE(rec.pending.empty());
    std::remove(path.c_str());
}

TEST(Journal, UnknownRecordTypesAreSkippedNotFatal)
{
    const std::string path = tempPath("unknown");
    auto encoded = *JobJournal::encodeSpec(shotJob(1, 3));
    {
        JobJournal journal({path, FsyncPolicy::Batch});
        journal.appendSubmitted(1, encoded);
        journal.sync();
    }
    // Splice a future-version record (valid CRC, unknown type)
    // BETWEEN the existing record and a new completion.
    std::vector<std::uint8_t> bytes = readFileBytes(path);
    appendRecord(bytes, 0x7777, {1, 2, 3});
    writeFileBytes(path, bytes);
    {
        JobJournal journal({path, FsyncPolicy::Batch});
        journal.appendCompleted(1, false);
        journal.sync();
    }
    RecoveryReport rec = recoverJournal(path);
    EXPECT_EQ(rec.corruptRecords, 0u);
    EXPECT_EQ(rec.recordsScanned, 3u);
    EXPECT_TRUE(rec.pending.empty()) << "the completion after the "
                                        "unknown record must count";
    std::remove(path.c_str());
}

TEST(Journal, AppendsAfterCloseAreNoOps)
{
    const std::string path = tempPath("closed");
    auto encoded = *JobJournal::encodeSpec(shotJob(1, 4));
    JobJournal journal({path, FsyncPolicy::Batch});
    journal.appendSubmitted(1, encoded);
    journal.close();
    journal.appendSubmitted(2, encoded);
    journal.appendCompleted(1, false);
    EXPECT_EQ(journal.stats().recordsAppended, 1u);
    RecoveryReport rec = recoverJournal(path);
    EXPECT_EQ(rec.recordsScanned, 1u);
    ASSERT_EQ(rec.pending.size(), 1u);
    EXPECT_EQ(rec.pending[0].journalId, 1u);
    std::remove(path.c_str());
}

TEST(Journal, FsyncPolicyNamesParse)
{
    EXPECT_EQ(fsyncPolicyFromName("none"), FsyncPolicy::None);
    EXPECT_EQ(fsyncPolicyFromName("batch"), FsyncPolicy::Batch);
    EXPECT_EQ(fsyncPolicyFromName("always"), FsyncPolicy::Always);
    EXPECT_FALSE(fsyncPolicyFromName("paranoid").has_value());
    EXPECT_FALSE(fsyncPolicyFromName("").has_value());
}

TEST(Journal, SyncIsDurableUnderEveryPolicy)
{
    for (FsyncPolicy policy : {FsyncPolicy::None, FsyncPolicy::Batch,
                               FsyncPolicy::Always}) {
        const std::string path = tempPath("policy");
        auto encoded = *JobJournal::encodeSpec(shotJob(1, 5));
        JobJournal journal({path, policy});
        journal.appendSubmitted(1, encoded);
        journal.sync();
        // Read the file WHILE the journal is still open: exactly
        // what a post-crash recovery sees.
        RecoveryReport rec = recoverJournal(path);
        ASSERT_EQ(rec.pending.size(), 1u)
            << "policy " << static_cast<int>(policy);
        EXPECT_GE(journal.stats().fsyncs, 1u)
            << "sync() must fsync under policy "
            << static_cast<int>(policy);
        journal.close();
        std::remove(path.c_str());
    }
}

TEST(Journal, PreassembledProgramsHaveNoSerializedForm)
{
    JobSpec spec = shotJob(1, 6);
    EXPECT_TRUE(JobJournal::encodeSpec(spec).has_value());
    spec.program = isa::Program{};
    EXPECT_FALSE(JobJournal::encodeSpec(spec).has_value());
}

// --- crash recovery through the service -------------------------------------

TEST(ServiceJournal, ShutdownFailureDoesNotMarkPendingWorkComplete)
{
    const std::string path = tempPath("crash");
    {
        ServiceConfig sc;
        sc.startPaused = true; // nothing runs: destruction == crash
        sc.journalPath = path;
        ExperimentService svc(sc);
        svc.submit(matrixJob(2, 0xC0FFEE));
        svc.journal()->sync();
    } // scheduler fails the queued job at shutdown; the journal is
      // already closed, so the failure cannot reach the disk
    RecoveryReport rec = recoverJournal(path);
    EXPECT_EQ(rec.submitted, 1u);
    EXPECT_EQ(rec.completed, 0u);
    EXPECT_EQ(rec.pending.size(), 1u);
    std::remove(path.c_str());
}

/**
 * THE TENTPOLE PIN: a job that crashed while queued is recovered and
 * re-run bit-identically at EVERY scheduler shape -- any shard
 * count, any worker count, stealing on or off. Determinism makes the
 * recovered result indistinguishable from the uninterrupted one.
 */
TEST(ServiceJournal, CrashRecoveryIsBitIdenticalAcrossSchedulerShapes)
{
    auto reference = [](std::size_t shards) {
        ExperimentService svc({.workers = 1});
        return svc.runSync(matrixJob(shards, 0x57EA1));
    };

    auto crashWithQueued = [](const std::string &path,
                              std::size_t shards) {
        ServiceConfig sc;
        sc.startPaused = true;
        sc.journalPath = path;
        ExperimentService svc(sc);
        svc.submit(matrixJob(shards, 0x57EA1));
        svc.journal()->sync();
    };

    auto recoverAndRun = [](const std::string &path, unsigned workers,
                            bool steal) {
        ServiceConfig sc;
        sc.workers = workers;
        sc.workSteal = steal;
        sc.minStealRounds = 2;
        sc.journalPath = path;
        ExperimentService svc(sc);
        EXPECT_EQ(svc.recoveredIds().size(), 1u);
        return svc.awaitAll(svc.recoveredIds()).at(0);
    };

    for (std::size_t shards :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        const JobResult pinned = reference(shards);
        ASSERT_FALSE(pinned.failed());
        EXPECT_EQ(pinned.sampleCount, 32u);
        for (unsigned workers : {1u, 2u, 4u})
            for (bool steal : {false, true}) {
                const std::string path = tempPath("matrix");
                crashWithQueued(path, shards);
                EXPECT_EQ(pinned, recoverAndRun(path, workers, steal))
                    << "shards=" << shards << " workers=" << workers
                    << " steal=" << steal;
                std::remove(path.c_str());
            }
    }
}

TEST(ServiceJournal, GracefulCompletionLeavesNothingPending)
{
    const std::string path = tempPath("graceful");
    {
        ServiceConfig sc;
        sc.workers = 2;
        sc.journalPath = path;
        ExperimentService svc(sc);
        std::vector<JobId> ids{svc.submit(shotJob(4, 11)),
                               svc.submit(shotJob(4, 12))};
        for (const JobResult &r : svc.awaitAll(ids))
            EXPECT_FALSE(r.failed());
        // Completion markers land via the notifier thread; wait for
        // them to reach the journal before tearing it down.
        EXPECT_TRUE(waitFor([&] {
            return svc.journal()->stats().recordsAppended >= 4;
        }));
    }
    RecoveryReport rec = recoverJournal(path);
    EXPECT_EQ(rec.submitted, 2u);
    EXPECT_EQ(rec.completed, 2u);
    EXPECT_TRUE(rec.pending.empty());
    std::remove(path.c_str());
}

TEST(ServiceJournal, CancelledJobsDoNotComeBack)
{
    const std::string path = tempPath("cancel");
    {
        ServiceConfig sc;
        sc.startPaused = true;
        sc.journalPath = path;
        ExperimentService svc(sc);
        const JobId keep = svc.submit(matrixJob(1, 21));
        const JobId axed = svc.submit(matrixJob(1, 22));
        (void)keep;
        EXPECT_TRUE(svc.scheduler().cancel(axed));
        EXPECT_TRUE(waitFor([&] {
            return svc.journal()->stats().recordsAppended >= 3;
        })) << "submit+submit+cancel must reach the journal";
        svc.journal()->sync();
    }
    RecoveryReport rec = recoverJournal(path);
    EXPECT_EQ(rec.cancelled, 1u);
    ASSERT_EQ(rec.pending.size(), 1u);
    EXPECT_EQ(rec.pending[0].spec.seed, 21u);
    std::remove(path.c_str());
}

TEST(ServiceJournal, SecondCrashRecoversExactlyOnce)
{
    const std::string path = tempPath("twocrash");
    { // first crash: one job queued
        ServiceConfig sc;
        sc.startPaused = true;
        sc.journalPath = path;
        ExperimentService svc(sc);
        svc.submit(matrixJob(2, 31));
        svc.journal()->sync();
    }
    { // recovery that itself crashes before running anything
        ServiceConfig sc;
        sc.startPaused = true;
        sc.journalPath = path;
        ExperimentService svc(sc);
        EXPECT_EQ(svc.recoveredIds().size(), 1u);
        svc.journal()->sync();
    }
    { // second recovery: the Resubmitted record must have retired
      // the original id -- exactly ONE pending job, not two
        ServiceConfig sc;
        sc.workers = 2;
        sc.journalPath = path;
        ExperimentService svc(sc);
        EXPECT_GE(svc.recovery().resubmitted, 1u);
        ASSERT_EQ(svc.recoveredIds().size(), 1u);
        JobResult r = svc.awaitAll(svc.recoveredIds()).at(0);
        EXPECT_FALSE(r.failed());
        EXPECT_EQ(r.sampleCount, 32u);
        EXPECT_TRUE(waitFor([&] {
            return recoverJournal(path).pending.empty();
        }));
    }
    RecoveryReport rec = recoverJournal(path);
    EXPECT_TRUE(rec.pending.empty());
    std::remove(path.c_str());
}

// --- compaction -------------------------------------------------------------

/**
 * A journal with history: six jobs run to completion (12 retired
 * records), then a crash with two queued submits (2 live records).
 */
std::string
journalWithRetiredHistory(const std::string &tag)
{
    const std::string path = tempPath(tag);
    {
        ServiceConfig sc;
        sc.workers = 2;
        sc.journalPath = path;
        ExperimentService svc(sc);
        std::vector<JobId> ids;
        for (unsigned i = 0; i < 6; ++i)
            ids.push_back(svc.submit(shotJob(2, 100 + i)));
        for (const JobResult &r : svc.awaitAll(ids))
            EXPECT_FALSE(r.failed());
        EXPECT_TRUE(waitFor([&] {
            return svc.journal()->stats().recordsAppended >= 12;
        }));
    }
    {
        ServiceConfig sc;
        sc.startPaused = true;
        sc.journalPath = path;
        ExperimentService svc(sc);
        // The prior history must NOT trip recovery-time compaction
        // here: this service crashes with work queued, and the test
        // wants the un-compacted file. (Default trigger is 1024.)
        EXPECT_FALSE(svc.compaction().performed);
        svc.submit(matrixJob(2, 0x11f3));
        svc.submit(shotJob(3, 0xdead));
        svc.journal()->sync();
    }
    return path;
}

TEST(JournalCompaction, CompactedJournalRecoversIdentically)
{
    const std::string path = journalWithRetiredHistory("compact");

    RecoveryReport before = recoverJournal(path);
    EXPECT_EQ(before.recordsScanned, 14u);
    ASSERT_EQ(before.pending.size(), 2u);

    CompactionReport report = compactJournal(path, before);
    EXPECT_TRUE(report.performed);
    EXPECT_EQ(report.recordsBefore, 14u);
    EXPECT_EQ(report.recordsAfter, 2u);
    EXPECT_LT(report.bytesAfter, report.bytesBefore);

    // The compacted file recovers the SAME live set: same journal
    // ids, byte-identical specs, nothing retired resurrected.
    RecoveryReport after = recoverJournal(path);
    EXPECT_TRUE(after.magicValid);
    EXPECT_EQ(after.recordsScanned, 2u);
    EXPECT_EQ(after.corruptRecords, 0u);
    ASSERT_EQ(after.pending.size(), before.pending.size());
    for (std::size_t i = 0; i < after.pending.size(); ++i) {
        EXPECT_EQ(after.pending[i].journalId,
                  before.pending[i].journalId);
        EXPECT_EQ(*JobJournal::encodeSpec(after.pending[i].spec),
                  *JobJournal::encodeSpec(before.pending[i].spec))
            << "compaction changed pending spec " << i;
    }
    std::remove(path.c_str());
}

TEST(JournalCompaction, RecoveryTimeTriggerCompactsAndRunsPending)
{
    const std::string path = journalWithRetiredHistory("trigger");
    const JobResult pinnedMatrix = [] {
        ExperimentService svc({.workers = 1});
        return svc.runSync(matrixJob(2, 0x11f3));
    }();

    ServiceConfig sc;
    sc.workers = 2;
    sc.journalPath = path;
    sc.journalCompactMinRetired = 8; // 12 retired >= 8: compact
    ExperimentService svc(sc);
    EXPECT_TRUE(svc.compaction().performed);
    EXPECT_EQ(svc.compaction().recordsAfter, 2u);
    ASSERT_EQ(svc.recoveredIds().size(), 2u);
    std::vector<JobResult> results =
        svc.awaitAll(svc.recoveredIds());
    for (const JobResult &r : results)
        EXPECT_FALSE(r.failed());
    // Compaction must not perturb recovered execution: the matrix
    // job still reproduces its uninterrupted result bit for bit.
    EXPECT_EQ(results.at(0), pinnedMatrix);
    std::remove(path.c_str());
}

TEST(JournalCompaction, BelowThresholdLeavesTheJournalAlone)
{
    const std::string path = journalWithRetiredHistory("below");
    const std::vector<std::uint8_t> original = readFileBytes(path);
    {
        ServiceConfig sc;
        sc.startPaused = true;
        sc.journalPath = path;
        sc.journalCompactMinRetired = 64; // 12 retired < 64: keep
        ExperimentService svc(sc);
        EXPECT_FALSE(svc.compaction().performed);
        EXPECT_EQ(svc.recoveredIds().size(), 2u);
        svc.journal()->sync();
    }
    // No rewrite happened: the original file is still a prefix (the
    // recovery only APPENDED its Resubmitted records after it).
    const std::vector<std::uint8_t> after = readFileBytes(path);
    ASSERT_GE(after.size(), original.size());
    EXPECT_TRUE(std::equal(original.begin(), original.end(),
                           after.begin()));
    std::remove(path.c_str());
}

TEST(JournalCompaction, PendingSurvivesCompactionPlusSecondCrash)
{
    const std::string path = journalWithRetiredHistory("recrash");
    { // recovery WITH compaction that itself crashes before running
        ServiceConfig sc;
        sc.startPaused = true;
        sc.journalPath = path;
        sc.journalCompactMinRetired = 8;
        ExperimentService svc(sc);
        EXPECT_TRUE(svc.compaction().performed);
        EXPECT_EQ(svc.recoveredIds().size(), 2u);
        svc.journal()->sync();
    }
    { // second recovery off the compacted file: the Resubmitted
      // records retired the compacted ids -- still exactly two
        ServiceConfig sc;
        sc.workers = 2;
        sc.journalPath = path;
        ExperimentService svc(sc);
        EXPECT_GE(svc.recovery().resubmitted, 2u);
        ASSERT_EQ(svc.recoveredIds().size(), 2u);
        for (const JobResult &r : svc.awaitAll(svc.recoveredIds()))
            EXPECT_FALSE(r.failed());
        EXPECT_TRUE(waitFor([&] {
            return recoverJournal(path).pending.empty();
        }));
    }
    std::remove(path.c_str());
}

TEST(JournalCompaction, CompactionSubsumesDamagedTailTruncation)
{
    const std::string path = journalWithRetiredHistory("damage");
    // Garbage after the last valid record: recovery reports the
    // damage, compaction rewrites it away entirely.
    std::vector<std::uint8_t> bytes = readFileBytes(path);
    for (int i = 0; i < 24; ++i)
        bytes.push_back(0xA5);
    writeFileBytes(path, bytes);

    RecoveryReport damaged = recoverJournal(path);
    EXPECT_GT(damaged.corruptRecords, 0u);
    ASSERT_EQ(damaged.pending.size(), 2u);

    CompactionReport report = compactJournal(path, damaged);
    EXPECT_TRUE(report.performed);
    RecoveryReport clean = recoverJournal(path);
    EXPECT_EQ(clean.corruptRecords, 0u);
    EXPECT_EQ(clean.pending.size(), 2u);
    EXPECT_EQ(clean.validPrefixBytes, readFileBytes(path).size());
    std::remove(path.c_str());
}

// --- corruption / truncation fuzz -------------------------------------------

/** A journal holding exactly two Submitted records, plus the byte
 *  offsets where each record ends. */
struct TwoRecordJournal
{
    std::vector<std::uint8_t> bytes;
    std::size_t endOfFirst = 0;  // magic + record 1
    std::size_t endOfSecond = 0; // the full file
};

TwoRecordJournal
buildTwoRecordJournal(const std::string &path)
{
    {
        JobJournal journal({path, FsyncPolicy::Batch});
        journal.appendSubmitted(1, *JobJournal::encodeSpec(shotJob(1, 41)));
        journal.appendSubmitted(2, *JobJournal::encodeSpec(shotJob(2, 42)));
        journal.sync();
    }
    TwoRecordJournal out;
    out.bytes = readFileBytes(path);
    ScanResult scan = scanRecords(out.bytes, kJournalMagic);
    EXPECT_EQ(scan.records.size(), 2u);
    // Container overhead per record: u32 len + u32 crc + u16 type.
    out.endOfFirst =
        kJournalMagic.size() + 8 + 2 + scan.records[0].payload.size();
    out.endOfSecond =
        out.endOfFirst + 8 + 2 + scan.records[1].payload.size();
    EXPECT_EQ(out.endOfSecond, out.bytes.size());
    return out;
}

TEST(JournalFuzz, EveryTruncationPointKeepsTheValidPrefix)
{
    const std::string path = tempPath("fuzztrunc");
    TwoRecordJournal j = buildTwoRecordJournal(path);
    const std::size_t magic = kJournalMagic.size();

    for (std::size_t cut = 0; cut < j.bytes.size(); ++cut) {
        writeFileBytes(path, {j.bytes.begin(), j.bytes.begin() + cut});
        RecoveryReport rec = recoverJournal(path); // must never throw
        if (cut == 0) {
            EXPECT_FALSE(rec.journalExisted) << "cut=" << cut;
            continue;
        }
        EXPECT_TRUE(rec.journalExisted) << "cut=" << cut;
        if (cut < magic) {
            // Not even a full magic: damage, nothing recovered.
            EXPECT_FALSE(rec.magicValid) << "cut=" << cut;
            EXPECT_EQ(rec.corruptRecords, 1u) << "cut=" << cut;
            EXPECT_TRUE(rec.pending.empty()) << "cut=" << cut;
        } else if (cut < j.endOfFirst) {
            // Torn first record: empty-but-clean or empty-and-torn.
            EXPECT_TRUE(rec.magicValid) << "cut=" << cut;
            EXPECT_EQ(rec.corruptRecords, cut == magic ? 0u : 1u)
                << "cut=" << cut;
            EXPECT_TRUE(rec.pending.empty()) << "cut=" << cut;
            EXPECT_EQ(rec.validPrefixBytes, magic) << "cut=" << cut;
        } else {
            // First record intact, second torn (unless cut is the
            // exact boundary).
            EXPECT_EQ(rec.corruptRecords, cut == j.endOfFirst ? 0u : 1u)
                << "cut=" << cut;
            ASSERT_EQ(rec.pending.size(), 1u) << "cut=" << cut;
            EXPECT_EQ(rec.pending[0].journalId, 1u) << "cut=" << cut;
            EXPECT_EQ(rec.validPrefixBytes, j.endOfFirst)
                << "cut=" << cut;
        }
    }
    std::remove(path.c_str());
}

TEST(JournalFuzz, FlippedCrcByteDropsOnlyTheDamagedSuffix)
{
    const std::string path = tempPath("fuzzcrc");
    TwoRecordJournal j = buildTwoRecordJournal(path);

    { // flip one CRC byte of the SECOND record: first survives
        std::vector<std::uint8_t> bytes = j.bytes;
        bytes[j.endOfFirst + 4] ^= 0xFF;
        writeFileBytes(path, bytes);
        RecoveryReport rec = recoverJournal(path);
        EXPECT_EQ(rec.corruptRecords, 1u);
        ASSERT_EQ(rec.pending.size(), 1u);
        EXPECT_EQ(rec.pending[0].journalId, 1u);
    }
    { // flip one BODY byte of the first record: scan stops at once
        std::vector<std::uint8_t> bytes = j.bytes;
        bytes[kJournalMagic.size() + 8 + 3] ^= 0x01;
        writeFileBytes(path, bytes);
        RecoveryReport rec = recoverJournal(path);
        EXPECT_EQ(rec.corruptRecords, 1u);
        EXPECT_TRUE(rec.pending.empty());
        EXPECT_EQ(rec.validPrefixBytes, kJournalMagic.size());
    }
    std::remove(path.c_str());
}

TEST(JournalFuzz, GarbageTailKeepsTheValidRecordsBeforeIt)
{
    const std::string path = tempPath("fuzzgarbage");
    TwoRecordJournal j = buildTwoRecordJournal(path);
    std::vector<std::uint8_t> bytes = j.bytes;
    bytes.insert(bytes.end(), 64, 0xA5); // absurd length field
    writeFileBytes(path, bytes);

    RecoveryReport rec = recoverJournal(path);
    EXPECT_EQ(rec.corruptRecords, 1u);
    EXPECT_EQ(rec.pending.size(), 2u);
    EXPECT_EQ(rec.validPrefixBytes, j.endOfSecond);
    std::remove(path.c_str());
}

TEST(JournalFuzz, DamagedTailIsTruncatedAwayOnServiceRecovery)
{
    const std::string path = tempPath("fuzzrepair");
    buildTwoRecordJournal(path);
    {
        std::vector<std::uint8_t> bytes = readFileBytes(path);
        bytes.insert(bytes.end(), 32, 0xA5);
        writeFileBytes(path, bytes);
    }
    { // recover through the service: runs both jobs AND repairs the
      // file by truncating the garbage before appending
        ServiceConfig sc;
        sc.workers = 2;
        sc.journalPath = path;
        ExperimentService svc(sc);
        EXPECT_EQ(svc.recovery().corruptRecords, 1u);
        ASSERT_EQ(svc.recoveredIds().size(), 2u);
        for (const JobResult &r : svc.awaitAll(svc.recoveredIds()))
            EXPECT_FALSE(r.failed());
        EXPECT_TRUE(waitFor([&] {
            return svc.journal()->stats().recordsAppended >= 4;
        }));
    }
    // The repaired journal reads clean end to end: the Resubmitted
    // and Completed records written after the repair are visible.
    RecoveryReport rec = recoverJournal(path);
    EXPECT_EQ(rec.corruptRecords, 0u);
    EXPECT_EQ(rec.resubmitted, 2u);
    EXPECT_TRUE(rec.pending.empty());
    std::remove(path.c_str());
}

TEST(JournalFuzz, ForeignFileIsRefusedNotClobbered)
{
    const std::string path = tempPath("foreign");
    writeFileBytes(path, {'n', 'o', 't', ' ', 'a', ' ', 'j', 'o',
                          'u', 'r', 'n', 'a', 'l'});
    ServiceConfig sc;
    sc.journalPath = path;
    EXPECT_THROW(ExperimentService svc(sc), FatalError);
    // ... and the operator's file is untouched.
    EXPECT_EQ(readFileBytes(path).size(), 13u);
    std::remove(path.c_str());
}

TEST(ServiceJournal, CorruptAndRecoveryCountersAreExported)
{
    const std::string path = tempPath("metrics");
    buildTwoRecordJournal(path);
    {
        std::vector<std::uint8_t> bytes = readFileBytes(path);
        bytes.push_back(0xA5); // torn tail
        writeFileBytes(path, bytes);
    }
    metrics::MetricsRegistry registry(true);
    ServiceConfig sc;
    sc.startPaused = true; // recovered jobs stay queued: cheap test
    sc.journalPath = path;
    ExperimentService svc(sc);
    svc.bindMetrics(registry);
    const std::string text = registry.renderPrometheus();
    EXPECT_NE(text.find("quma_journal_records_corrupt_total 1"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("quma_recovery_jobs_recovered_total 2"),
              std::string::npos);
    EXPECT_NE(text.find("quma_recovery_records_scanned_total 2"),
              std::string::npos);
    EXPECT_NE(text.find("quma_journal_records_total"),
              std::string::npos);
    EXPECT_NE(text.find("quma_journal_fsyncs_total"),
              std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace quma::runtime

// --- capture + replay --------------------------------------------------------

namespace quma::net {
namespace {

using runtime::ExperimentService;
using runtime::JobId;
using runtime::JobResult;
using runtime::JobSpec;
using runtime::ServiceConfig;

/** Record a real loopback session: submit `specs`, await them all,
 *  tear down cleanly, and return the connection's capture. */
CaptureFile
recordSession(const std::string &dir, std::vector<JobSpec> specs)
{
    ::mkdir(dir.c_str(), 0755);
    ServiceConfig sc;
    sc.workers = 2;
    ExperimentService service(sc);
    ServerConfig server_cfg;
    server_cfg.captureDir = dir;
    auto listener = std::make_unique<LoopbackListener>();
    LoopbackListener *accept_side = listener.get();
    QumaServer server(service, std::move(listener), server_cfg);
    {
        QumaClient client(accept_side->connect());
        std::vector<JobId> ids = client.submitAll(std::move(specs));
        for (const JobResult &r : client.awaitAll(ids))
            EXPECT_FALSE(r.failed()) << r.error;
    } // client hangs up; the server reaps the connection
    server.stop();
    return readCapture(dir + "/conn-1.qcap");
}

std::vector<JobSpec>
sessionSpecs()
{
    std::vector<JobSpec> specs;
    for (std::uint64_t seed : {0xAAu, 0xBBu, 0xCCu}) {
        JobSpec job = runtime::shotJob(1, seed);
        job.rounds = 8;
        job.shards = 2;
        job.minRoundsPerShard = 2;
        specs.push_back(std::move(job));
    }
    return specs;
}

TEST(CaptureReplay, LiveSessionReplaysBitIdentical)
{
    const std::string dir = runtime::tempPath("capdir");
    CaptureFile capture = recordSession(dir, sessionSpecs());
    ASSERT_TRUE(capture.valid);
    EXPECT_EQ(capture.corruptRecords, 0u);
    // 3 submits + 3 awaits in; at least as many replies out.
    EXPECT_GE(capture.inboundCount(), 6u);
    EXPECT_GE(capture.frames.size() - capture.inboundCount(), 6u);

    ReplayReport report = replayCapture(capture);
    EXPECT_TRUE(report.ok()) << report.mismatches.size()
                             << " mismatches, " << report.timedOut
                             << " timeouts";
    EXPECT_EQ(report.awaitedResults, 3u);
    EXPECT_EQ(report.matchedResults, 3u);
    EXPECT_GE(report.framesSent, 6u);
}

TEST(CaptureReplay, TamperedResultIsDetected)
{
    const std::string dir = runtime::tempPath("capdir");
    std::vector<JobSpec> specs(1, sessionSpecs().front());
    CaptureFile capture = recordSession(dir, std::move(specs));
    ASSERT_TRUE(capture.valid);

    // Flip one byte inside a captured AwaitReply payload: the replay
    // diff MUST notice -- that is the whole point of the tool.
    bool tampered = false;
    for (CapturedFrame &f : capture.frames) {
        if (f.inbound || f.frame.size() <= kFrameHeaderBytes)
            continue;
        FrameHeader fh = decodeFrameHeader(f.frame.data());
        if (fh.type != MsgType::AwaitReply)
            continue;
        f.frame[f.frame.size() - 1] ^= 0x01;
        tampered = true;
        break;
    }
    ASSERT_TRUE(tampered) << "no AwaitReply captured?";

    ReplayReport report = replayCapture(capture);
    EXPECT_FALSE(report.ok());
    EXPECT_EQ(report.matchedResults, 0u);
    ASSERT_EQ(report.mismatches.size(), 1u);
    EXPECT_NE(report.mismatches[0].reason.find("AwaitReply"),
              std::string::npos);
}

TEST(CaptureReplay, TornCaptureTailKeepsTheValidPrefix)
{
    const std::string dir = runtime::tempPath("capdir");
    std::vector<JobSpec> specs(1, sessionSpecs().front());
    CaptureFile full = recordSession(dir, std::move(specs));
    ASSERT_TRUE(full.valid);

    const std::string file = dir + "/conn-1.qcap";
    std::vector<std::uint8_t> bytes = runtime::readFileBytes(file);
    // Cut into the middle of the last record.
    runtime::writeFileBytes(file,
                            {bytes.begin(), bytes.end() - 3});
    CaptureFile torn = readCapture(file);
    EXPECT_TRUE(torn.valid);
    EXPECT_EQ(torn.corruptRecords, 1u);
    EXPECT_EQ(torn.frames.size(), full.frames.size() - 1);
}

/**
 * THE GOLDEN FIXTURE: a checked-in AllXY session capture that every
 * build must replay bit-identically. A diff here means the simulated
 * physics, the wire codec, or the merge order changed -- all of
 * which are breaking changes to the determinism contract.
 *
 * Regenerate (after an INTENTIONAL contract change) with:
 *     QUMA_REGEN_GOLDEN=1 ./build/test_journal \
 *         --gtest_filter='*GoldenAllxySession*'
 */
TEST(CaptureReplay, GoldenAllxySessionReplaysBitIdentical)
{
    const std::string fixture =
        std::string(QUMA_TEST_DATA_DIR) + "/allxy_session.qcap";

    if (std::getenv("QUMA_REGEN_GOLDEN") != nullptr) {
        const std::string dir = runtime::tempPath("golden");
        std::vector<JobSpec> specs;
        for (double amplitudeError : {0.0, 0.05}) {
            experiments::AllxyConfig cfg;
            cfg.rounds = 32;
            cfg.seed = 0xA11C;
            cfg.shards = 2;
            cfg.amplitudeError = amplitudeError;
            specs.push_back(experiments::allxyJob(cfg));
        }
        CaptureFile session = recordSession(dir, std::move(specs));
        ASSERT_TRUE(session.valid);
        runtime::writeFileBytes(
            fixture, runtime::readFileBytes(dir + "/conn-1.qcap"));
    }

    CaptureFile capture = readCapture(fixture);
    ASSERT_TRUE(capture.valid)
        << "missing golden fixture " << fixture
        << " -- run with QUMA_REGEN_GOLDEN=1 to generate it";
    EXPECT_EQ(capture.corruptRecords, 0u);

    ReplayReport report = replayCapture(capture);
    EXPECT_TRUE(report.ok())
        << report.mismatches.size() << " mismatches, "
        << report.timedOut << " timeouts -- the determinism "
        << "contract broke (or changed intentionally: regenerate "
        << "the fixture, see the test comment)";
    EXPECT_EQ(report.awaitedResults, 2u);
    EXPECT_EQ(report.matchedResults, 2u);
}

} // namespace
} // namespace quma::net
