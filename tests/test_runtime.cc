/**
 * @file
 * Tests of the concurrent experiment runtime: program/LUT caching,
 * machine-pool sharding and reuse, bounded-queue scheduling, lease
 * batching, failure reporting, and -- the core invariant -- result
 * determinism independent of worker count and scheduling order.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "experiments/allxy.hh"
#include "experiments/coherence.hh"
#include "runtime/service.hh"

namespace quma::runtime {
namespace {

/** A small averaged measurement program (rounds x X180-measure). */
std::string
shotProgram(unsigned rounds)
{
    return R"(
        mov r15, 40000
        mov r1, 0
        mov r2, )" +
           std::to_string(rounds) + R"(
        L:
        QNopReg r15
        Pulse {q0}, X180
        Wait 4
        MPG {q0}, 300
        MD {q0}, r7
        Wait 600
        addi r1, r1, 1
        bne r1, r2, L
        halt
    )";
}

JobSpec
shotJob(unsigned rounds, std::uint64_t seed)
{
    JobSpec job;
    job.name = "shots";
    job.assembly = shotProgram(rounds);
    job.bins = 1;
    job.seed = seed;
    job.maxCycles = 50'000'000;
    return job;
}

TEST(ProgramCache, MemoizesAssembly)
{
    ProgramCache cache;
    auto a = cache.assemble("Wait 10\nhalt");
    auto b = cache.assemble("Wait 10\nhalt");
    EXPECT_EQ(a.get(), b.get());
    auto c = cache.assemble("Wait 20\nhalt");
    EXPECT_NE(a.get(), c.get());
    auto s = cache.stats();
    EXPECT_EQ(s.programHits, 1u);
    EXPECT_EQ(s.programMisses, 2u);
}

TEST(ProgramCache, BoundedWithFifoEviction)
{
    ProgramCache cache(2, 2);
    cache.assemble("Wait 1\nhalt");
    cache.assemble("Wait 2\nhalt");
    cache.assemble("Wait 3\nhalt"); // evicts "Wait 1"
    EXPECT_EQ(cache.stats().programEvictions, 1u);
    cache.assemble("Wait 1\nhalt"); // miss again
    EXPECT_EQ(cache.stats().programMisses, 4u);
}

TEST(ProgramCache, MemoizesLutRendering)
{
    ProgramCache cache;
    awg::CalibrationParams cp;
    cp.rabiRadPerAmpNs = qsim::standardRabiGain();
    auto a = cache.lut(cp);
    auto b = cache.lut(cp);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(a->size(), 9u); // Table 1: 7 gates + MSMT + CZ

    cp.amplitudeError = 0.05;
    auto c = cache.lut(cp);
    EXPECT_NE(a.get(), c.get());
    auto s = cache.stats();
    EXPECT_EQ(s.lutHits, 1u);
    EXPECT_EQ(s.lutMisses, 2u);
}

TEST(MachinePool, ReusesIdleMachinesOfTheSameShard)
{
    MachinePool pool(2);
    core::MachineConfig cfg;
    {
        auto lease = pool.acquire(cfg);
        EXPECT_TRUE(lease.valid());
    }
    { auto lease = pool.acquire(cfg); }
    auto s = pool.stats();
    EXPECT_EQ(s.machinesCreated, 1u);
    EXPECT_EQ(s.reuseHits, 1u);
    EXPECT_EQ(s.idleMachines, 1u);
    EXPECT_EQ(s.leasedMachines, 0u);
}

TEST(MachinePool, ShardsByConfiguration)
{
    MachinePool pool(4);
    core::MachineConfig one;
    core::MachineConfig two;
    two.qubits.assign(2, qsim::paperQubitParams());
    { auto a = pool.acquire(one); }
    { auto b = pool.acquire(two); }
    // A third acquire of either config reuses its own shard.
    { auto c = pool.acquire(two); }
    auto s = pool.stats();
    EXPECT_EQ(s.machinesCreated, 2u);
    EXPECT_EQ(s.reuseHits, 1u);
}

TEST(MachinePool, EvictsForeignIdleMachineWhenFull)
{
    MachinePool pool(1);
    core::MachineConfig one;
    core::MachineConfig two;
    two.qubits.assign(2, qsim::paperQubitParams());
    { auto a = pool.acquire(one); }
    { auto b = pool.acquire(two); } // evicts the idle config-one unit
    auto s = pool.stats();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.machinesCreated, 2u);
}

TEST(Scheduler, RunsJobsAndReportsResults)
{
    ExperimentService svc({.workers = 2});
    JobId id = svc.submit(shotJob(8, 0x11));
    JobResult r = svc.await(id);
    ASSERT_FALSE(r.failed());
    EXPECT_TRUE(r.run.halted);
    EXPECT_EQ(r.sampleCount, 8u);
    ASSERT_EQ(r.bitAverages.size(), 1u);
    EXPECT_GT(r.bitAverages[0], 0.5);
    EXPECT_TRUE(svc.poll(id).has_value());
    EXPECT_EQ(svc.status(id), JobStatus::Done);
}

TEST(Scheduler, BoundedQueueRejectsWhenFull)
{
    ExperimentService svc({.workers = 1,
                           .queueCapacity = 2,
                           .startPaused = true});
    auto a = svc.trySubmit(shotJob(2, 1));
    auto b = svc.trySubmit(shotJob(2, 2));
    auto c = svc.trySubmit(shotJob(2, 3));
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_FALSE(c.has_value());
    EXPECT_EQ(svc.scheduler().stats().rejected, 1u);

    svc.start();
    svc.drain();
    EXPECT_FALSE(svc.await(*a).failed());
    EXPECT_FALSE(svc.await(*b).failed());
    EXPECT_EQ(svc.scheduler().stats().queueHighWater, 2u);
}

TEST(Scheduler, BatchesSameConfigJobsOnOneLease)
{
    ExperimentService svc({.workers = 1, .startPaused = true});
    std::vector<JobId> ids;
    for (unsigned i = 0; i < 4; ++i)
        ids.push_back(svc.submit(shotJob(2, i)));
    svc.start();
    svc.drain();
    for (JobId id : ids)
        EXPECT_FALSE(svc.await(id).failed());
    // One worker, one config: after the first job the rest ride the
    // same pool lease.
    EXPECT_EQ(svc.scheduler().stats().batchedJobs, 3u);
    EXPECT_EQ(svc.pool().stats().machinesCreated, 1u);
}

TEST(Scheduler, FailedJobCarriesTheError)
{
    setLogQuiet(true);
    ExperimentService svc({.workers = 1});
    JobSpec bad;
    bad.assembly = "ThisIsNotAnInstruction r1, r2";
    JobResult r = svc.runSync(std::move(bad));
    EXPECT_TRUE(r.failed());
    EXPECT_FALSE(r.error.empty());
    setLogQuiet(false);
}

TEST(Scheduler, InvalidMachineConfigFailsTheJobNotTheService)
{
    setLogQuiet(true);
    ExperimentService svc({.workers = 1});
    // Machine construction itself must reject this config (T2 > 2*T1
    // is unphysical); the worker has to absorb the throw and fail the
    // job instead of terminating the process.
    JobSpec bad = shotJob(2, 0x1);
    bad.machine.qubits.assign(1, qsim::paperQubitParams());
    bad.machine.qubits[0].t2Ns = 3.0 * bad.machine.qubits[0].t1Ns;
    JobResult r = svc.runSync(std::move(bad));
    EXPECT_TRUE(r.failed());
    EXPECT_NE(r.error.find("machine unavailable"), std::string::npos);

    // The service keeps serving healthy jobs afterwards.
    JobResult ok = svc.runSync(shotJob(2, 0x2));
    EXPECT_FALSE(ok.failed());
    setLogQuiet(false);
}

TEST(Scheduler, BoundedResultRetentionAgesOutOldJobs)
{
    setLogQuiet(true);
    ExperimentService svc({.workers = 1, .maxRetainedResults = 2});
    JobId a = svc.submit(shotJob(2, 1));
    svc.await(a);
    JobId b = svc.submit(shotJob(2, 2));
    JobId c = svc.submit(shotJob(2, 3));
    svc.await(b);
    svc.await(c);
    svc.drain();
    // With two retained slots the oldest finished job has aged out.
    EXPECT_THROW(svc.poll(a), FatalError);
    EXPECT_TRUE(svc.poll(c).has_value());
    setLogQuiet(false);
}

/**
 * The runtime's core invariant: a job set's results depend only on
 * the job specs, not on worker count, pool capacity, lease batching,
 * or queue order. 1, 2 and 8 workers must aggregate identically.
 */
TEST(Scheduler, DeterministicAcrossWorkerCounts)
{
    auto runAll = [](unsigned workers) {
        ExperimentService svc({.workers = workers});
        std::vector<JobId> ids;
        core::MachineConfig twoQubit;
        twoQubit.qubits.assign(2, qsim::paperQubitParams());
        for (unsigned i = 0; i < 6; ++i) {
            JobSpec job = shotJob(4, 0x9000 + i);
            if (i % 2 == 1)
                job.machine = twoQubit; // two shards in flight
            ids.push_back(svc.submit(std::move(job)));
        }
        return svc.awaitAll(ids);
    };

    std::vector<JobResult> one = runAll(1);
    std::vector<JobResult> two = runAll(2);
    std::vector<JobResult> eight = runAll(8);
    ASSERT_EQ(one.size(), two.size());
    ASSERT_EQ(one.size(), eight.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i], two[i]) << "job " << i;
        EXPECT_EQ(one[i], eight[i]) << "job " << i;
    }
}

TEST(ServiceExperiments, AllxyThroughServiceIsDeterministic)
{
    experiments::AllxyConfig cfg;
    cfg.rounds = 8;
    auto viaOne = [&] {
        ExperimentService svc({.workers = 1});
        return experiments::runAllxy(cfg, svc);
    }();
    auto viaFour = [&] {
        ExperimentService svc({.workers = 4});
        return experiments::runAllxy(cfg, svc);
    }();
    ASSERT_EQ(viaOne.rawS.size(), 42u);
    EXPECT_EQ(viaOne.rawS, viaFour.rawS);
    EXPECT_EQ(viaOne.fidelity, viaFour.fidelity);
}

TEST(ServiceExperiments, CoherenceSweepPointsRunAsParallelJobs)
{
    experiments::CoherenceConfig cfg =
        experiments::CoherenceConfig::withLinearSweep(4000, 4);
    // Enough rounds that the readout-rescaled first point clears the
    // threshold with margin for any RNG stream: the rescaling divides
    // by a calibration separation that is itself averaged over the
    // rounds, so very small counts have fat tails.
    cfg.rounds = 16;

    ExperimentService svc({.workers = 4});
    auto t1 = experiments::runT1(cfg, svc);
    ASSERT_EQ(t1.population.size(), 4u);
    EXPECT_TRUE(t1.run.halted);
    // Population decays from ~1: the first point must read excited.
    EXPECT_GT(t1.population.front(), 0.5);
    // One job per sweep point went through the scheduler, all four
    // machine leases came from the same shard.
    EXPECT_EQ(svc.scheduler().stats().completed, 4u);

    // And the sweep is reproducible on a different worker count.
    ExperimentService svcOne({.workers = 1});
    auto t1Again = experiments::runT1(cfg, svcOne);
    EXPECT_EQ(t1.population, t1Again.population);
}

} // namespace
} // namespace quma::runtime
