/**
 * @file
 * Tests of the concurrent experiment runtime: program/LUT caching,
 * machine-pool sharding and reuse, bounded-queue scheduling, lease
 * batching, failure reporting, and -- the core invariant -- result
 * determinism independent of worker count and scheduling order.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>

#include "common/logging.hh"
#include "experiments/allxy.hh"
#include "experiments/coherence.hh"
#include "runtime/service.hh"

namespace quma::runtime {
namespace {

/** A small averaged measurement program (rounds x X180-measure). */
std::string
shotProgram(unsigned rounds)
{
    return R"(
        mov r15, 40000
        mov r1, 0
        mov r2, )" +
           std::to_string(rounds) + R"(
        L:
        QNopReg r15
        Pulse {q0}, X180
        Wait 4
        MPG {q0}, 300
        MD {q0}, r7
        Wait 600
        addi r1, r1, 1
        bne r1, r2, L
        halt
    )";
}

JobSpec
shotJob(unsigned rounds, std::uint64_t seed)
{
    JobSpec job;
    job.name = "shots";
    job.assembly = shotProgram(rounds);
    job.bins = 1;
    job.seed = seed;
    job.maxCycles = 50'000'000;
    return job;
}

TEST(ProgramCache, MemoizesAssembly)
{
    ProgramCache cache;
    auto a = cache.assemble("Wait 10\nhalt");
    auto b = cache.assemble("Wait 10\nhalt");
    EXPECT_EQ(a.get(), b.get());
    auto c = cache.assemble("Wait 20\nhalt");
    EXPECT_NE(a.get(), c.get());
    auto s = cache.stats();
    EXPECT_EQ(s.programHits, 1u);
    EXPECT_EQ(s.programMisses, 2u);
}

TEST(ProgramCache, BoundedWithFifoEviction)
{
    ProgramCache cache(2, 2);
    cache.assemble("Wait 1\nhalt");
    cache.assemble("Wait 2\nhalt");
    cache.assemble("Wait 3\nhalt"); // evicts "Wait 1"
    EXPECT_EQ(cache.stats().programEvictions, 1u);
    cache.assemble("Wait 1\nhalt"); // miss again
    EXPECT_EQ(cache.stats().programMisses, 4u);
}

TEST(ProgramCache, MemoizesLutRendering)
{
    ProgramCache cache;
    awg::CalibrationParams cp;
    cp.rabiRadPerAmpNs = qsim::standardRabiGain();
    auto a = cache.lut(cp);
    auto b = cache.lut(cp);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(a->size(), 9u); // Table 1: 7 gates + MSMT + CZ

    cp.amplitudeError = 0.05;
    auto c = cache.lut(cp);
    EXPECT_NE(a.get(), c.get());
    auto s = cache.stats();
    EXPECT_EQ(s.lutHits, 1u);
    EXPECT_EQ(s.lutMisses, 2u);
}

TEST(MachinePool, ReusesIdleMachinesOfTheSameShard)
{
    MachinePool pool(2);
    core::MachineConfig cfg;
    {
        auto lease = pool.acquire(cfg);
        EXPECT_TRUE(lease.valid());
    }
    { auto lease = pool.acquire(cfg); }
    auto s = pool.stats();
    EXPECT_EQ(s.machinesCreated, 1u);
    EXPECT_EQ(s.reuseHits, 1u);
    EXPECT_EQ(s.idleMachines, 1u);
    EXPECT_EQ(s.leasedMachines, 0u);
}

TEST(MachinePool, ShardsByConfiguration)
{
    MachinePool pool(4);
    core::MachineConfig one;
    core::MachineConfig two;
    two.qubits.assign(2, qsim::paperQubitParams());
    { auto a = pool.acquire(one); }
    { auto b = pool.acquire(two); }
    // A third acquire of either config reuses its own shard.
    { auto c = pool.acquire(two); }
    auto s = pool.stats();
    EXPECT_EQ(s.machinesCreated, 2u);
    EXPECT_EQ(s.reuseHits, 1u);
}

TEST(MachinePool, EvictsForeignIdleMachineWhenFull)
{
    MachinePool pool(1);
    core::MachineConfig one;
    core::MachineConfig two;
    two.qubits.assign(2, qsim::paperQubitParams());
    { auto a = pool.acquire(one); }
    { auto b = pool.acquire(two); } // evicts the idle config-one unit
    auto s = pool.stats();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.machinesCreated, 2u);
}

TEST(Scheduler, RunsJobsAndReportsResults)
{
    ExperimentService svc({.workers = 2});
    JobId id = svc.submit(shotJob(8, 0x11));
    JobResult r = svc.await(id);
    ASSERT_FALSE(r.failed());
    EXPECT_TRUE(r.run.halted);
    EXPECT_EQ(r.sampleCount, 8u);
    ASSERT_EQ(r.bitAverages.size(), 1u);
    EXPECT_GT(r.bitAverages[0], 0.5);
    EXPECT_TRUE(svc.poll(id).has_value());
    EXPECT_EQ(svc.status(id), JobStatus::Done);
}

TEST(Scheduler, BoundedQueueRejectsWhenFull)
{
    ExperimentService svc({.workers = 1,
                           .queueCapacity = 2,
                           .startPaused = true});
    auto a = svc.trySubmit(shotJob(2, 1));
    auto b = svc.trySubmit(shotJob(2, 2));
    auto c = svc.trySubmit(shotJob(2, 3));
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_FALSE(c.has_value());
    EXPECT_EQ(svc.scheduler().stats().rejected, 1u);

    svc.start();
    svc.drain();
    EXPECT_FALSE(svc.await(*a).failed());
    EXPECT_FALSE(svc.await(*b).failed());
    EXPECT_EQ(svc.scheduler().stats().queueHighWater, 2u);
}

TEST(Scheduler, BatchesSameConfigJobsOnOneLease)
{
    ExperimentService svc({.workers = 1, .startPaused = true});
    std::vector<JobId> ids;
    for (unsigned i = 0; i < 4; ++i)
        ids.push_back(svc.submit(shotJob(2, i)));
    svc.start();
    svc.drain();
    for (JobId id : ids)
        EXPECT_FALSE(svc.await(id).failed());
    // One worker, one config: after the first job the rest ride the
    // same pool lease.
    EXPECT_EQ(svc.scheduler().stats().batchedJobs, 3u);
    EXPECT_EQ(svc.pool().stats().machinesCreated, 1u);
}

TEST(Scheduler, FailedJobCarriesTheError)
{
    setLogQuiet(true);
    ExperimentService svc({.workers = 1});
    JobSpec bad;
    bad.assembly = "ThisIsNotAnInstruction r1, r2";
    JobResult r = svc.runSync(std::move(bad));
    EXPECT_TRUE(r.failed());
    EXPECT_FALSE(r.error.empty());
    setLogQuiet(false);
}

TEST(Scheduler, InvalidMachineConfigFailsTheJobNotTheService)
{
    setLogQuiet(true);
    ExperimentService svc({.workers = 1});
    // Machine construction itself must reject this config (T2 > 2*T1
    // is unphysical); the worker has to absorb the throw and fail the
    // job instead of terminating the process.
    JobSpec bad = shotJob(2, 0x1);
    bad.machine.qubits.assign(1, qsim::paperQubitParams());
    bad.machine.qubits[0].t2Ns = 3.0 * bad.machine.qubits[0].t1Ns;
    JobResult r = svc.runSync(std::move(bad));
    EXPECT_TRUE(r.failed());
    EXPECT_NE(r.error.find("machine unavailable"), std::string::npos);

    // The service keeps serving healthy jobs afterwards.
    JobResult ok = svc.runSync(shotJob(2, 0x2));
    EXPECT_FALSE(ok.failed());
    setLogQuiet(false);
}

TEST(Scheduler, BoundedResultRetentionAgesOutOldJobs)
{
    setLogQuiet(true);
    ExperimentService svc({.workers = 1, .maxRetainedResults = 2});
    JobId a = svc.submit(shotJob(2, 1));
    svc.await(a);
    JobId b = svc.submit(shotJob(2, 2));
    JobId c = svc.submit(shotJob(2, 3));
    svc.await(b);
    svc.await(c);
    svc.drain();
    // With two retained slots the oldest finished job has aged out.
    EXPECT_THROW(svc.poll(a), FatalError);
    EXPECT_TRUE(svc.poll(c).has_value());
    setLogQuiet(false);
}

/**
 * The runtime's core invariant: a job set's results depend only on
 * the job specs, not on worker count, pool capacity, lease batching,
 * or queue order. 1, 2 and 8 workers must aggregate identically.
 */
TEST(Scheduler, DeterministicAcrossWorkerCounts)
{
    auto runAll = [](unsigned workers) {
        ExperimentService svc({.workers = workers});
        std::vector<JobId> ids;
        core::MachineConfig twoQubit;
        twoQubit.qubits.assign(2, qsim::paperQubitParams());
        for (unsigned i = 0; i < 6; ++i) {
            JobSpec job = shotJob(4, 0x9000 + i);
            if (i % 2 == 1)
                job.machine = twoQubit; // two shards in flight
            ids.push_back(svc.submit(std::move(job)));
        }
        return svc.awaitAll(ids);
    };

    std::vector<JobResult> one = runAll(1);
    std::vector<JobResult> two = runAll(2);
    std::vector<JobResult> eight = runAll(8);
    ASSERT_EQ(one.size(), two.size());
    ASSERT_EQ(one.size(), eight.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i], two[i]) << "job " << i;
        EXPECT_EQ(one[i], eight[i]) << "job " << i;
    }
}

TEST(Sharding, PartitionRoundsIsBalancedAndClamped)
{
    // Balanced: sizes differ by at most one and cover [0, N).
    auto p = partitionRounds(10, 3, 1);
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p[0].begin, 0u);
    EXPECT_EQ(p[0].end, 4u);
    EXPECT_EQ(p[1].end, 7u);
    EXPECT_EQ(p[2].end, 10u);

    // minRoundsPerShard clamps the width.
    EXPECT_EQ(partitionRounds(16, 8, 8).size(), 2u);
    EXPECT_EQ(partitionRounds(15, 8, 8).size(), 1u);
    // Never more shards than rounds; 0 shards means one.
    EXPECT_EQ(partitionRounds(3, 8, 1).size(), 3u);
    EXPECT_EQ(partitionRounds(8, 0, 1).size(), 1u);
    EXPECT_TRUE(partitionRounds(0, 4, 1).empty());
}

/**
 * The tentpole invariant: a round-structured job merges to the SAME
 * JobResult -- bit for bit -- no matter how its rounds are split
 * across machines or how many workers drain the shards. Each round
 * derives its RNG streams from (seed, round index) and the merge
 * re-sums per-round collector sums in global round order.
 */
TEST(Sharding, ShardMergeIsBitIdenticalAcrossSplitsAndWorkers)
{
    auto run = [](std::size_t shards, unsigned workers) {
        ExperimentService svc({.workers = workers});
        JobSpec job = shotJob(1, 0xdead); // one-round body
        job.rounds = 32;
        job.shards = shards;
        job.minRoundsPerShard = 8;
        return svc.runSync(std::move(job));
    };

    JobResult oneWay = run(1, 1);
    ASSERT_FALSE(oneWay.failed());
    EXPECT_TRUE(oneWay.run.halted);
    EXPECT_EQ(oneWay.sampleCount, 32u);

    EXPECT_EQ(oneWay, run(2, 1));
    EXPECT_EQ(oneWay, run(2, 4));
    EXPECT_EQ(oneWay, run(4, 2));
    EXPECT_EQ(oneWay, run(4, 4));
}

/**
 * Work stealing rebalances shards at round granularity, and because
 * every round's RNG streams are derived from (seed, round) and the
 * merge re-sums in global round order, the result must stay
 * bit-identical whether stealing is on or off, at every worker and
 * shard count.
 */
TEST(Sharding, StealingKeepsMergesBitIdentical)
{
    auto run = [](std::size_t shards, unsigned workers, bool steal) {
        ServiceConfig sc;
        sc.workers = workers;
        sc.workSteal = steal;
        sc.minStealRounds = 2;
        ExperimentService svc(sc);
        JobSpec job = shotJob(1, 0x57ea1); // one-round body
        job.rounds = 32;
        job.shards = shards;
        job.minRoundsPerShard = 8;
        return svc.runSync(std::move(job));
    };

    JobResult pinned = run(1, 1, false);
    ASSERT_FALSE(pinned.failed());
    EXPECT_EQ(pinned.sampleCount, 32u);

    for (std::size_t shards : {std::size_t{1}, std::size_t{2},
                               std::size_t{4}})
        for (unsigned workers : {1u, 2u, 4u})
            for (bool steal : {false, true})
                EXPECT_EQ(pinned, run(shards, workers, steal))
                    << "shards=" << shards << " workers=" << workers
                    << " steal=" << steal;
}

/**
 * The forced-slow-shard case: ONE shard holds every round of a large
 * sweep while three workers idle. The idle workers must split off
 * tail shards (stats().shardsStolen > 0) and the merged result must
 * still match the serial pin.
 */
TEST(Sharding, IdleWorkersStealFromASlowShard)
{
    // A 32-shot round body keeps each round busy long enough that
    // the idle workers' wakeup is never the bottleneck.
    JobResult pinned = [] {
        ExperimentService svc({.workers = 1});
        JobSpec job = shotJob(32, 0x5709);
        job.rounds = 64;
        job.shards = 1;
        return svc.runSync(std::move(job));
    }();
    ASSERT_FALSE(pinned.failed());

    ServiceConfig sc;
    sc.workers = 4;
    sc.minStealRounds = 2;
    ExperimentService svc(sc);
    JobSpec job = shotJob(32, 0x5709);
    job.rounds = 64;
    job.shards = 1; // everything lands on one worker...
    JobResult r = svc.runSync(std::move(job));
    ASSERT_FALSE(r.failed());
    EXPECT_EQ(r, pinned);
    // ...until the other three steal from its tail.
    auto s = svc.scheduler().stats();
    EXPECT_GT(s.shardsStolen, 0u);
    EXPECT_GT(s.roundsStolen, 0u);
    EXPECT_GE(s.shardsExecuted, 1u + s.shardsStolen);
    // The wheel counters flow through the per-run samples.
    EXPECT_GT(s.eventsDispatched, 0u);
    EXPECT_GT(s.wheelHighWater, 0u);
}

TEST(Sharding, ShardsRunInParallelAndCountersTrackThem)
{
    ExperimentService svc({.workers = 4});
    JobSpec job = shotJob(1, 0x7e57);
    job.rounds = 32;
    job.shards = 4;
    job.minRoundsPerShard = 8;
    JobResult r = svc.runSync(std::move(job));
    ASSERT_FALSE(r.failed());
    auto s = svc.scheduler().stats();
    EXPECT_EQ(s.shardedJobs, 1u);
    // Stealing may split the planned shards further; never fewer.
    EXPECT_GE(s.shardsExecuted, 4u);
    EXPECT_EQ(s.completed, 1u); // shards are tasks, not jobs
}

TEST(Sharding, ShardFailureFailsTheWholeJob)
{
    setLogQuiet(true);
    ExperimentService svc({.workers = 2});
    JobSpec job = shotJob(1, 0x1);
    job.assembly = "ThisIsNotAnInstruction r1, r2";
    job.rounds = 16;
    job.shards = 2;
    job.minRoundsPerShard = 8;
    JobResult r = svc.runSync(std::move(job));
    EXPECT_TRUE(r.failed());
    EXPECT_NE(r.error.find("shard"), std::string::npos);
    setLogQuiet(false);
}

TEST(Priority, HighClassOvertakesABacklog)
{
    // Paused single-worker service, aging off: drain order must be
    // exactly class order, FIFO within a class.
    ExperimentService svc({.workers = 1,
                           .startPaused = true,
                           .agingQuantum = 0});
    std::vector<JobId> normals;
    for (unsigned i = 0; i < 4; ++i)
        normals.push_back(svc.submit(shotJob(2, i)));
    JobSpec high = shotJob(2, 0x42);
    high.priority = JobPriority::High;
    JobSpec high2 = shotJob(2, 0x43);
    high2.priority = JobPriority::High;
    JobId h1 = svc.submit(std::move(high));
    JobId h2 = svc.submit(std::move(high2));

    svc.start();
    svc.drain();
    std::vector<JobId> order = svc.scheduler().finishedIds();
    std::vector<JobId> expected{h1, h2, normals[0], normals[1],
                                normals[2], normals[3]};
    EXPECT_EQ(order, expected);
}

TEST(Priority, AgingKeepsTheBacklogFromStarving)
{
    // One Batch job followed by a stream of 8 High jobs, aging one
    // class step per 2 newer submissions. By drain time the Batch
    // job has aged past the YOUNGEST High jobs (0 + 9/2 = 4 vs
    // 2 + 1/2 = 2) while the oldest High jobs still lead -- it is
    // overtaken, but not starved to the back of the line.
    ExperimentService svc({.workers = 1,
                           .startPaused = true,
                           .agingQuantum = 2});
    JobSpec batch = shotJob(2, 0xb);
    batch.priority = JobPriority::Batch;
    JobId b = svc.submit(std::move(batch));
    std::vector<JobId> highs;
    for (unsigned i = 0; i < 8; ++i) {
        JobSpec h = shotJob(2, 0x100 + i);
        h.priority = JobPriority::High;
        highs.push_back(svc.submit(std::move(h)));
    }
    svc.start();
    svc.drain();
    std::vector<JobId> order = svc.scheduler().finishedIds();
    ASSERT_EQ(order.size(), 9u);
    auto pos = std::find(order.begin(), order.end(), b) - order.begin();
    EXPECT_GT(pos, 0);                       // overtaken by High work
    EXPECT_LT(pos, static_cast<long>(order.size() - 1)); // not starved
}

/** A shotJob whose machine under-provisions the timing event queues:
 *  the pipeline hits push backpressure, which stats() reports. */
JobSpec
saturatingJob(unsigned rounds, std::uint64_t seed)
{
    JobSpec job = shotJob(rounds, seed);
    job.machine.timing.timingQueueCapacity = 4;
    job.machine.timing.pulseQueueCapacity = 4;
    return job;
}

TEST(Admission, MachineSaturationTightensAndRecovers)
{
    // alpha = 1: the EWMA follows the last run exactly, so the test
    // is deterministic.
    ExperimentService svc({.workers = 1,
                           .queueCapacity = 16,
                           .saturationAlpha = 1.0});
    EXPECT_EQ(svc.scheduler().effectiveQueueCapacity(), 16u);

    ASSERT_FALSE(svc.runSync(saturatingJob(8, 0x5a)).failed());
    auto s = svc.scheduler().stats();
    EXPECT_GE(s.saturatedRuns, 1u);
    EXPECT_GT(s.machineSaturation, 0.5);
    // Congested: a quarter of the hard bound (floored at workers).
    EXPECT_EQ(svc.scheduler().effectiveQueueCapacity(), 4u);

    // A clean run (default queue depths) recovers full admission.
    ASSERT_FALSE(svc.runSync(shotJob(8, 0x5b)).failed());
    EXPECT_EQ(svc.scheduler().stats().machineSaturation, 0.0);
    EXPECT_EQ(svc.scheduler().effectiveQueueCapacity(), 16u);
}

TEST(Admission, TrySubmitShedsLoadWhileSaturated)
{
    ExperimentService svc({.workers = 1,
                           .queueCapacity = 32,
                           .saturationAlpha = 1.0});
    ASSERT_FALSE(svc.runSync(saturatingJob(8, 0x6a)).failed());
    ASSERT_EQ(svc.scheduler().effectiveQueueCapacity(), 8u);

    // Flood: the effective bound (8) rejects well below the hard
    // bound (32). The worker can drain at most a couple of jobs
    // while this loop runs, so rejections are guaranteed.
    std::vector<JobId> accepted;
    unsigned rejected = 0;
    for (unsigned i = 0; i < 32; ++i) {
        auto id = svc.trySubmit(saturatingJob(8, 0x700 + i));
        if (id)
            accepted.push_back(*id);
        else
            ++rejected;
    }
    EXPECT_GT(rejected, 0u);
    EXPECT_GE(svc.scheduler().stats().admissionSoftRejects, 1u);
    svc.drain();
    for (JobId id : accepted)
        EXPECT_FALSE(svc.await(id).failed());
}

TEST(ServiceExperiments, AllxyThroughServiceIsDeterministic)
{
    experiments::AllxyConfig cfg;
    cfg.rounds = 8;
    auto viaOne = [&] {
        ExperimentService svc({.workers = 1});
        return experiments::runAllxy(cfg, svc);
    }();
    auto viaFour = [&] {
        ExperimentService svc({.workers = 4});
        return experiments::runAllxy(cfg, svc);
    }();
    ASSERT_EQ(viaOne.rawS.size(), 42u);
    EXPECT_EQ(viaOne.rawS, viaFour.rawS);
    EXPECT_EQ(viaOne.fidelity, viaFour.fidelity);
}

TEST(ServiceExperiments, LargeAllxySweepShardsBitIdentically)
{
    // rounds >= kShardableRounds: the job ships a one-round body and
    // the runtime drives the averaging. Auto sharding picks 1 shard
    // on 1 worker and 4 shards on 4 workers -- the results must
    // still match bit for bit.
    experiments::AllxyConfig cfg;
    cfg.rounds = 32;
    auto viaOne = [&] {
        ExperimentService svc({.workers = 1});
        return experiments::runAllxy(cfg, svc);
    }();
    auto viaFour = [&] {
        ExperimentService svc({.workers = 4});
        auto out = experiments::runAllxy(cfg, svc);
        EXPECT_EQ(svc.scheduler().stats().shardedJobs, 1u);
        // Work stealing may split the planned 4 shards further when
        // a worker goes idle; never fewer.
        EXPECT_GE(svc.scheduler().stats().shardsExecuted, 4u);
        return out;
    }();
    ASSERT_EQ(viaOne.rawS.size(), 42u);
    EXPECT_EQ(viaOne.rawS, viaFour.rawS);
    EXPECT_EQ(viaOne.fidelity, viaFour.fidelity);
    // The staircase physics survives the per-round RNG restructure.
    EXPECT_LT(viaOne.deviation, 0.2);
}

TEST(ServiceExperiments, CoherenceSweepPointsRunAsParallelJobs)
{
    experiments::CoherenceConfig cfg =
        experiments::CoherenceConfig::withLinearSweep(4000, 4);
    // Enough rounds that the readout-rescaled first point clears the
    // threshold with margin for any RNG stream: the rescaling divides
    // by a calibration separation that is itself averaged over the
    // rounds, so very small counts have fat tails.
    cfg.rounds = 16;

    ExperimentService svc({.workers = 4});
    auto t1 = experiments::runT1(cfg, svc);
    ASSERT_EQ(t1.population.size(), 4u);
    EXPECT_TRUE(t1.run.halted);
    // Population decays from ~1: the first point must read excited.
    EXPECT_GT(t1.population.front(), 0.5);
    // One job per sweep point went through the scheduler, all four
    // machine leases came from the same shard.
    EXPECT_EQ(svc.scheduler().stats().completed, 4u);

    // And the sweep is reproducible on a different worker count.
    ExperimentService svcOne({.workers = 1});
    auto t1Again = experiments::runT1(cfg, svcOne);
    EXPECT_EQ(t1.population, t1Again.population);
}

TEST(Latency, PerPriorityDigestsTrackCompletions)
{
    ExperimentService svc({.workers = 2});
    std::vector<JobId> ids;
    for (unsigned i = 0; i < 4; ++i)
        ids.push_back(svc.submit(shotJob(2, 0x900 + i)));
    JobSpec high = shotJob(2, 0x990);
    high.priority = JobPriority::High;
    ids.push_back(svc.submit(std::move(high)));
    for (JobId id : ids)
        ASSERT_FALSE(svc.await(id).failed());

    auto stats = svc.scheduler().stats();
    const auto &normal =
        stats.latency[static_cast<std::size_t>(JobPriority::Normal)];
    const auto &highLat =
        stats.latency[static_cast<std::size_t>(JobPriority::High)];
    const auto &batch =
        stats.latency[static_cast<std::size_t>(JobPriority::Batch)];
    EXPECT_EQ(normal.count, 4u);
    EXPECT_EQ(highLat.count, 1u);
    EXPECT_EQ(batch.count, 0u);
    // Submit->finish latencies are positive and ordered sanely.
    EXPECT_GT(normal.p50, 0.0);
    EXPECT_GE(normal.p95, normal.p50);
    EXPECT_GE(normal.max, normal.p95);
    EXPECT_GT(highLat.max, 0.0);
    EXPECT_EQ(batch.max, 0.0);
}

TEST(Admission, PoolWaitIsASecondCongestionSignal)
{
    // Deterministically starve the worker: the test leases the
    // pool's only machine BEFORE the (paused) worker starts, so the
    // worker's acquire must block; with the threshold at zero, the
    // recorded wait counts as congestion and tightens the trySubmit
    // bound.
    ServiceConfig sc;
    sc.workers = 1;
    sc.queueCapacity = 16;
    sc.poolCapacity = 1;
    sc.poolWaitThresholdSeconds = 0.0;
    sc.startPaused = true;
    ExperimentService svc(sc);
    MachinePool::Lease hog = svc.pool().acquire(core::MachineConfig{});
    JobId id = svc.submit(shotJob(2, 0xa00));
    svc.start();
    // The worker's acquisition has begun (counter bumps before any
    // blocking); it cannot proceed until the hogged machine returns.
    while (svc.pool().stats().acquisitions < 2)
        std::this_thread::yield();
    // Past the counter the worker has only to enter the pool's wait;
    // give it ample time so the release finds it blocked.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    hog.release();
    ASSERT_FALSE(svc.await(id).failed());

    EXPECT_GT(svc.scheduler().stats().poolWaitEwmaSeconds, 0.0);
    // Congested: tightened to congestedQueueFraction * 16 = 4,
    // floored at the single worker.
    EXPECT_EQ(svc.scheduler().effectiveQueueCapacity(), 4u);

    // A generous pool (default: workers + 2) keeps the signal below
    // any reasonable threshold and admission wide open -- and a cold
    // pool does NOT read as congestion: machine construction is
    // excluded from the wait sample.
    ServiceConfig relaxed;
    relaxed.workers = 2;
    relaxed.queueCapacity = 16;
    relaxed.poolWaitThresholdSeconds = 0.0;
    ExperimentService easy(relaxed);
    ASSERT_FALSE(easy.runSync(shotJob(4, 0xa10)).failed());
    EXPECT_EQ(easy.scheduler().stats().poolWaitEwmaSeconds, 0.0);
    EXPECT_EQ(easy.scheduler().effectiveQueueCapacity(), 16u);
}

TEST(Scheduler, FinishedHistoryIsABoundedRing)
{
    ServiceConfig sc;
    sc.workers = 1;
    sc.finishedHistoryLimit = 4;
    ExperimentService svc(sc);
    std::vector<JobId> ids;
    for (unsigned i = 0; i < 10; ++i)
        ids.push_back(svc.submit(shotJob(1, 0xb00 + i)));
    svc.drain();

    // Only the newest 4 completions are remembered...
    std::vector<JobId> history = svc.scheduler().finishedIds();
    ASSERT_EQ(history.size(), 4u);
    for (JobId id : history)
        EXPECT_NE(std::find(ids.begin(), ids.end(), id), ids.end());
    // ...but result retention is independent: every job still polls.
    for (JobId id : ids)
        EXPECT_TRUE(svc.poll(id).has_value());
}

TEST(Scheduler, CancelDropsQueuedWorkOnly)
{
    ServiceConfig sc;
    sc.workers = 1;
    sc.queueCapacity = 8;
    sc.startPaused = true;
    ExperimentService svc(sc);
    JobId keep = svc.submit(shotJob(2, 1));
    JobId drop = svc.submit(shotJob(2, 2));

    EXPECT_TRUE(svc.scheduler().cancel(drop));
    EXPECT_FALSE(svc.scheduler().cancel(drop)); // already finished
    EXPECT_FALSE(svc.scheduler().cancel(999));  // unknown id
    EXPECT_EQ(svc.status(drop), JobStatus::Failed);
    JobResult dropped = svc.await(drop);
    EXPECT_TRUE(dropped.failed());
    EXPECT_NE(dropped.error.find("cancelled"), std::string::npos);

    svc.start();
    EXPECT_FALSE(svc.await(keep).failed());
    EXPECT_FALSE(svc.scheduler().cancel(keep)); // already done
    auto stats = svc.scheduler().stats();
    EXPECT_EQ(stats.cancelled, 1u);
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.failed, 1u); // the cancelled job counts as failed
}

namespace {

/** Phases recorded for `id`, in record order. */
std::vector<TracePhase>
phasesOf(const std::vector<TraceEvent> &events, JobId id)
{
    std::vector<TracePhase> out;
    for (const TraceEvent &e : events)
        if (e.job == id)
            out.push_back(e.phase);
    return out;
}

bool
contains(const std::vector<TracePhase> &phases, TracePhase p)
{
    return std::find(phases.begin(), phases.end(), p) != phases.end();
}

} // namespace

TEST(Trace, DisabledByDefaultRecordsNothing)
{
    ExperimentService svc({.workers = 2});
    EXPECT_FALSE(svc.trace().enabled());
    EXPECT_FALSE(svc.await(svc.submit(shotJob(2, 0x1))).failed());
    EXPECT_EQ(svc.trace().eventCount(), 0u);
    EXPECT_EQ(svc.trace().dropped(), 0u);
}

TEST(Trace, EnabledRunCapturesTheFullLifecycle)
{
    ExperimentService svc({.workers = 2});
    svc.trace().enable();
    JobId id = svc.submit(shotJob(2, 0x2));
    EXPECT_FALSE(svc.await(id).failed());

    std::vector<TracePhase> phases =
        phasesOf(svc.trace().events(), id);
    for (TracePhase p :
         {TracePhase::Submitted, TracePhase::Admitted,
          TracePhase::Queued, TracePhase::Leased,
          TracePhase::ShardStart, TracePhase::ShardFinish,
          TracePhase::Finished})
        EXPECT_TRUE(contains(phases, p)) << tracePhaseName(p);
    // Causal order within the job's own event stream.
    EXPECT_EQ(phases.front(), TracePhase::Submitted);
    EXPECT_LT(std::find(phases.begin(), phases.end(),
                        TracePhase::ShardStart),
              std::find(phases.begin(), phases.end(),
                        TracePhase::ShardFinish));
    // Timestamps never run backwards (steady clock, record order).
    std::vector<TraceEvent> all = svc.trace().events();
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_GE(all[i].nanos, all[i - 1].nanos);
}

TEST(Trace, ShardedJobTracksEveryShard)
{
    // A round-structured job (rounds on the spec, one-round body):
    // only those shard, and only they have a merge step to trace.
    ExperimentService svc({.workers = 4});
    svc.trace().enable();
    experiments::AllxyConfig cfg;
    cfg.rounds = 32;
    cfg.shards = 4;
    JobId id = svc.submit(experiments::allxyJob(cfg));
    EXPECT_FALSE(svc.await(id).failed());

    std::vector<TraceEvent> events = svc.trace().events();
    std::set<std::uint32_t> started, finished;
    bool merged = false;
    for (const TraceEvent &e : events) {
        if (e.job != id)
            continue;
        if (e.phase == TracePhase::ShardStart)
            started.insert(e.shard);
        if (e.phase == TracePhase::ShardFinish)
            finished.insert(e.shard);
        if (e.phase == TracePhase::Merge)
            merged = true;
    }
    // At least the 4 planned shards; stealing may add split-off
    // shards, each with its own start/finish pair.
    EXPECT_GE(started.size(), 4u);
    EXPECT_EQ(finished, started);
    EXPECT_TRUE(merged);
}

TEST(Trace, OverflowDropsInsteadOfGrowing)
{
    JobTraceRecorder recorder(/*capacity=*/4);
    recorder.enable();
    for (JobId id = 1; id <= 10; ++id)
        recorder.record(id, TracePhase::Submitted);
    EXPECT_EQ(recorder.eventCount(), 4u);
    EXPECT_EQ(recorder.dropped(), 6u);
    recorder.clear();
    EXPECT_EQ(recorder.eventCount(), 0u);
    EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(Trace, ChromeDumpPairsSlicesAndParses)
{
    ExperimentService svc({.workers = 2});
    svc.trace().enable();
    EXPECT_FALSE(svc.await(svc.submit(shotJob(2, 0x4))).failed());

    std::string json = svc.trace().chromeTraceJson();
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_EQ(json.substr(json.size() - 2), "]}");
    // Shard execution renders as a complete slice, the lifecycle
    // points as instants.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"submitted\""), std::string::npos);
    // Balanced braces -- cheap structural sanity without a parser.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

} // namespace
} // namespace quma::runtime
