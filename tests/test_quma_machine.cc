/**
 * @file
 * Integration tests of the assembled machine: the Table 5 decode
 * timeline, the determinism-under-jitter property at the heart of
 * the paper, feedback control, hazard injection, and the QIS/QuMIS
 * equivalence.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "experiments/allxy.hh"
#include "quma/machine.hh"

namespace quma::core {
namespace {

/** The paper's two-round AllXY prefix (I,I then X180,X180). */
const char *kTwoRounds = R"(
    mov r15, 40000
    QNopReg r15
    Pulse {q0}, I
    Wait 4
    Pulse {q0}, I
    Wait 4
    MPG {q0}, 300
    MD {q0}, r7
    QNopReg r15
    Pulse {q0}, X180
    Wait 4
    Pulse {q0}, X180
    Wait 4
    MPG {q0}, 300
    MD {q0}, r7
    Wait 500
    halt
)";

TEST(Machine, Table5DecodeTimeline)
{
    MachineConfig cfg;
    cfg.traceEnabled = true;
    QumaMachine m(cfg);
    m.loadAssembly(kTwoRounds);
    auto r = m.run(2'000'000);
    EXPECT_TRUE(r.halted);
    EXPECT_TRUE(r.violations.clean());

    // Micro-operations reach the u-op units at the label times of
    // paper Table 5: TD = 40000, 40004, 80008, 80012.
    const auto &uops = m.trace().uopFires();
    ASSERT_EQ(uops.size(), 4u);
    EXPECT_EQ(uops[0].td, 40000u);
    EXPECT_EQ(uops[1].td, 40004u);
    EXPECT_EQ(uops[2].td, 80008u);
    EXPECT_EQ(uops[3].td, 80012u);
    EXPECT_EQ(uops[0].uop, 0);
    EXPECT_EQ(uops[2].uop, 1);

    // Codeword triggers at TD + Delta (Delta = 2 cycles).
    const auto &cws = m.trace().codewords();
    ASSERT_EQ(cws.size(), 4u);
    EXPECT_EQ(cws[0].td, 40002u);
    EXPECT_EQ(cws[1].td, 40006u);
    EXPECT_EQ(cws[2].td, 80010u);
    EXPECT_EQ(cws[3].td, 80014u);
    EXPECT_EQ(cws[0].codeword, 0);
    EXPECT_EQ(cws[3].codeword, 1);

    // Measurement triggers at TD = 40008 and 80016 (MPG/MD bypass
    // the u-op stage).
    const auto &mpgs = m.trace().mpgFires();
    ASSERT_EQ(mpgs.size(), 2u);
    EXPECT_EQ(mpgs[0].td, 40008u);
    EXPECT_EQ(mpgs[1].td, 80016u);

    // Analog pulses leave the CTPG exactly 80 ns after the trigger.
    const auto &pulses = m.trace().pulses();
    ASSERT_EQ(pulses.size(), 4u);
    EXPECT_EQ(pulses[0].t0Ns, cyclesToNs(40002 + 16));
    EXPECT_EQ(pulses[1].t0Ns - pulses[0].t0Ns, 20);
}

TEST(Machine, XXReturnsToGroundIIStaysGround)
{
    MachineConfig cfg;
    cfg.traceEnabled = true;
    QumaMachine m(cfg);
    m.loadAssembly(kTwoRounds);
    m.run(2'000'000);
    const auto &msmts = m.trace().measurements();
    ASSERT_EQ(msmts.size(), 2u);
    EXPECT_FALSE(msmts[0].trueOutcome); // I, I
    EXPECT_FALSE(msmts[1].trueOutcome); // X180, X180 = identity
}

TEST(Machine, RepeatedX180ReadsMostlyOne)
{
    // Readout is stochastic (T1 decay inside the window plus noise),
    // so assert on the ensemble: 16 shots with full re-init waits.
    MachineConfig cfg;
    QumaMachine m(cfg);
    m.configureDataCollection(1);
    m.loadAssembly(R"(
        mov r15, 40000
        mov r1, 0
        mov r2, 16
        L:
        QNopReg r15
        Pulse {q0}, X180
        Wait 4
        MPG {q0}, 300
        MD {q0}, r7
        Wait 600
        addi r1, r1, 1
        bne r1, r2, L
        halt
    )");
    m.run(20'000'000);
    EXPECT_EQ(m.dataCollector().sampleCount(), 16u);
    EXPECT_GT(m.dataCollector().bitAverages()[0], 0.8);
}

/**
 * The core property of queue-based timing control: instruction
 * execution timing is non-deterministic, output timing is exact.
 * Two runs with aggressive random stall injection under different
 * seeds must produce IDENTICAL pulse and measurement timelines.
 */
TEST(Machine, OutputTimingInvariantUnderExecutionJitter)
{
    auto runWithSeed = [](std::uint64_t seed) {
        MachineConfig cfg;
        cfg.traceEnabled = true;
        cfg.exec.stallInjection = true;
        cfg.exec.stallProbability = 0.5;
        cfg.exec.maxStallCycles = 8;
        cfg.exec.seed = seed;
        QumaMachine m(cfg);
        m.loadAssembly(kTwoRounds);
        auto r = m.run(2'000'000);
        EXPECT_TRUE(r.violations.clean());
        return std::make_pair(m.trace().codewords(),
                              m.trace().mpgFires());
    };
    auto [cwA, mpgA] = runWithSeed(1);
    auto [cwB, mpgB] = runWithSeed(0xdeadbeef);
    ASSERT_EQ(cwA.size(), cwB.size());
    for (std::size_t i = 0; i < cwA.size(); ++i) {
        EXPECT_EQ(cwA[i].td, cwB[i].td) << "codeword " << i;
        EXPECT_EQ(cwA[i].codeword, cwB[i].codeword);
    }
    ASSERT_EQ(mpgA.size(), mpgB.size());
    for (std::size_t i = 0; i < mpgA.size(); ++i)
        EXPECT_EQ(mpgA[i].td, mpgB[i].td);
}

TEST(Machine, QisAndQumisProduceIdenticalTimelines)
{
    // Apply/Measure (expanded by the control store at runtime) must
    // generate the same pulse schedule as hand-written QuMIS.
    auto timeline = [](const std::string &src) {
        MachineConfig cfg;
        cfg.traceEnabled = true;
        QumaMachine m(cfg);
        m.loadAssembly(src);
        m.run(2'000'000);
        return m.trace().codewords();
    };
    auto qis = timeline(R"(
        Wait 100
        Apply X180, q0
        Apply Y90, q0
        Measure q0, r7
        Wait 600
        halt
    )");
    auto qumis = timeline(R"(
        Wait 100
        Pulse {q0}, X180
        Wait 4
        Pulse {q0}, Y90
        Wait 4
        MPG {q0}, 300
        MD {q0}, r7
        Wait 600
        halt
    )");
    ASSERT_EQ(qis.size(), qumis.size());
    for (std::size_t i = 0; i < qis.size(); ++i) {
        EXPECT_EQ(qis[i].td, qumis[i].td);
        EXPECT_EQ(qis[i].codeword, qumis[i].codeword);
    }
}

TEST(Machine, CompositeUopExpandsViaSequenceTable)
{
    // Apply Z180: one micro-operation, two codewords (SeqZ).
    MachineConfig cfg;
    cfg.traceEnabled = true;
    QumaMachine m(cfg);
    m.loadAssembly(R"(
        Wait 100
        Apply Z180, q0
        Wait 600
        halt
    )");
    m.run(1'000'000);
    const auto &cws = m.trace().codewords();
    ASSERT_EQ(cws.size(), 2u);
    EXPECT_EQ(cws[0].codeword, 1); // X180 first (SeqZ = [0,1];[4,4])
    EXPECT_EQ(cws[1].codeword, 4); // then Y180
    EXPECT_EQ(cws[1].td - cws[0].td, 4u);
}

TEST(Machine, FeedbackActiveReset)
{
    // Measure; if the qubit read |1>, apply X180 to reset it; the
    // follow-up measurement must read |0> whatever the first
    // outcome was. Exercises MD write-back into the register file
    // and a conditional branch on the result (quantum feedback).
    MachineConfig cfg;
    cfg.qubits[0].readout.noiseSigma = 30.0; // high-fidelity readout
    QumaMachine m(cfg);
    m.loadAssembly(R"(
        Wait 10
        Pulse {q0}, X180
        Wait 4
        MPG {q0}, 300
        MD {q0}, r7
        Wait 500
        beq r7, r0, measure_again
        Pulse {q0}, X180
        Wait 4
        measure_again:
        MPG {q0}, 300
        MD {q0}, r8
        Wait 600
        halt
    )");
    auto r = m.run(2'000'000);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(m.registers().read(8), 0);
}

TEST(Machine, UnderrunDetectedWithStarvedQueues)
{
    // A one-entry timing queue cannot stay ahead of back-to-back
    // 1-cycle waits: the controller reports late time points rather
    // than silently slipping.
    MachineConfig cfg;
    cfg.timing.timingQueueCapacity = 1;
    cfg.exec.stallInjection = true;
    cfg.exec.stallProbability = 1.0;
    cfg.exec.maxStallCycles = 4;
    QumaMachine m(cfg);
    std::string src;
    for (int i = 0; i < 40; ++i)
        src += "Wait 1\nPulse {q0}, I\n";
    src += "Wait 600\nhalt";
    m.loadAssembly(src);
    auto r = m.run(2'000'000);
    EXPECT_TRUE(r.halted);
    EXPECT_GT(r.violations.latePoints, 0u);
}

TEST(Machine, WedgeDiagnosisOnImpossibleProgram)
{
    setLogQuiet(true);
    // MD with no preceding MPG arms the MDU forever; the reader of
    // r7 can never proceed -> the machine reports a wedge instead of
    // spinning.
    MachineConfig cfg;
    QumaMachine m(cfg);
    m.loadAssembly(R"(
        Wait 10
        MD {q0}, r7
        Wait 200
        add r1, r7, r0
        halt
    )");
    EXPECT_THROW(m.run(1'000'000), FatalError);
    setLogQuiet(false);
}

TEST(Machine, RunIsOneShot)
{
    setLogQuiet(true);
    MachineConfig cfg;
    QumaMachine m(cfg);
    m.loadAssembly("halt");
    m.run(1000);
    EXPECT_THROW(m.run(1000), FatalError);
    m.loadAssembly("halt");
    EXPECT_NO_THROW(m.run(1000));
    setLogQuiet(false);
}

/**
 * The pooled-machine contract: run -> reset -> run must reproduce the
 * fresh machine's results bit for bit, including the stochastic
 * readout (the chip RNG is rewound), the execution-stall stream, the
 * deterministic timeline, and the collected averages.
 */
TEST(Machine, ResetReproducesFreshRunBitForBit)
{
    MachineConfig cfg;
    cfg.traceEnabled = true;
    cfg.exec.stallInjection = true;
    cfg.exec.stallProbability = 0.4;
    cfg.exec.seed = 0xabc;
    cfg.chipSeed = 0x123;

    const char *src = R"(
        mov r15, 40000
        mov r1, 0
        mov r2, 6
        L:
        QNopReg r15
        Pulse {q0}, X90
        Wait 4
        MPG {q0}, 300
        MD {q0}, r7
        Wait 600
        addi r1, r1, 1
        bne r1, r2, L
        halt
    )";

    QumaMachine m(cfg);
    m.configureDataCollection(1);
    m.loadAssembly(src);
    auto firstRun = m.run(20'000'000);
    auto firstAvg = m.dataCollector().averages();
    auto firstBits = m.dataCollector().bitAverages();
    auto firstCws = m.trace().codewords();
    auto firstSamples = m.dataCollector().sampleCount();

    m.reset();
    m.configureDataCollection(1);
    m.loadAssembly(src);
    auto secondRun = m.run(20'000'000);

    EXPECT_EQ(firstRun, secondRun);
    EXPECT_EQ(firstAvg, m.dataCollector().averages());
    EXPECT_EQ(firstBits, m.dataCollector().bitAverages());
    EXPECT_EQ(firstSamples, m.dataCollector().sampleCount());
    const auto &secondCws = m.trace().codewords();
    ASSERT_EQ(firstCws.size(), secondCws.size());
    for (std::size_t i = 0; i < firstCws.size(); ++i) {
        EXPECT_EQ(firstCws[i].td, secondCws[i].td);
        EXPECT_EQ(firstCws[i].codeword, secondCws[i].codeword);
    }
}

/** reset(chip, exec) must equal a fresh machine built on those seeds. */
TEST(Machine, SeededResetMatchesFreshMachineWithThoseSeeds)
{
    const char *src = R"(
        Wait 100
        Apply X90, q0
        Measure q0, r7
        Wait 600
        halt
    )";
    auto runFresh = [&](std::uint64_t chip, std::uint64_t exec) {
        MachineConfig cfg;
        cfg.chipSeed = chip;
        cfg.exec.seed = exec;
        QumaMachine m(cfg);
        m.configureDataCollection(1);
        m.loadAssembly(src);
        m.run(2'000'000);
        return m.dataCollector().averages();
    };

    MachineConfig cfg;
    QumaMachine m(cfg);
    m.configureDataCollection(1);
    m.loadAssembly(src);
    m.run(2'000'000);

    m.reset(0x1111, 0x2222);
    m.configureDataCollection(1);
    m.loadAssembly(src);
    m.run(2'000'000);
    EXPECT_EQ(m.dataCollector().averages(), runFresh(0x1111, 0x2222));
}

TEST(Machine, StatsExposeQueueSaturation)
{
    // A long leading wait lets the pipeline run far ahead of the
    // deterministic clock; with a shallow timing queue its pushes
    // bounce, which must be visible in the machine-level counters a
    // pool scheduler watches.
    MachineConfig cfg;
    cfg.timing.timingQueueCapacity = 2;
    QumaMachine m(cfg);
    std::string src = "mov r15, 40000\nQNopReg r15\n";
    for (int i = 0; i < 20; ++i)
        src += "Pulse {q0}, I\nWait 4\n";
    src += "Wait 600\nhalt";
    m.loadAssembly(src);
    auto r = m.run(2'000'000);
    EXPECT_TRUE(r.halted);
    MachineStats stats = m.stats();
    EXPECT_GT(stats.queues.timing.pushFailed, 0u);
    EXPECT_EQ(stats.queues.timing.highWater, 2u);
    EXPECT_EQ(stats.queues.timing.capacity, 2u);
    EXPECT_GT(stats.microInstsIssued, 0u);
}

TEST(Machine, DataCollectionAveragesAcrossRounds)
{
    MachineConfig cfg;
    QumaMachine m(cfg);
    m.configureDataCollection(1);
    m.loadAssembly(R"(
        mov r15, 40000
        mov r1, 0
        mov r2, 12
        L:
        QNopReg r15
        Pulse {q0}, X180
        Wait 4
        MPG {q0}, 300
        MD {q0}, r7
        Wait 600
        addi r1, r1, 1
        bne r1, r2, L
        halt
    )");
    m.run(20'000'000);
    EXPECT_EQ(m.dataCollector().sampleCount(), 12u);
    // Full 200 us re-init each round: nearly every shot reads 1
    // (residual errors are T1 decay inside the readout window).
    EXPECT_GT(m.dataCollector().bitAverages()[0], 0.75);
}

TEST(Machine, LutContentMatchesTable1)
{
    MachineConfig cfg;
    QumaMachine m(cfg);
    m.uploadStandardCalibration();
    const auto &wm = m.awgModule(0).waveMemory();
    // Paper Table 1: codewords 0..6 hold I, X180, X90, Xm90, Y180,
    // Y90, Ym90.
    EXPECT_EQ(wm.lookup(0).name, "I");
    EXPECT_EQ(wm.lookup(1).name, "X180");
    EXPECT_EQ(wm.lookup(2).name, "X90");
    EXPECT_EQ(wm.lookup(3).name, "Xm90");
    EXPECT_EQ(wm.lookup(4).name, "Y180");
    EXPECT_EQ(wm.lookup(5).name, "Y90");
    EXPECT_EQ(wm.lookup(6).name, "Ym90");
    // 20 ns at 1 GSa/s.
    EXPECT_EQ(wm.lookup(1).i.size(), 20u);
}

TEST(Machine, AllxyMemoryFootprintMatchesPaper)
{
    // Paper §5.1.1: 7 stored pulses = 420 bytes (gate pulses only,
    // I and Q, 20 ns, 1 GSa/s, 12-bit samples).
    MachineConfig cfg;
    QumaMachine m(cfg);
    m.uploadStandardCalibration();
    const auto &wm = m.awgModule(0).waveMemory();
    std::size_t gate_samples = 0;
    for (Codeword cw = 0; cw <= 6; ++cw)
        gate_samples += wm.lookup(cw).i.size() + wm.lookup(cw).q.size();
    EXPECT_EQ(gate_samples * kSampleResolutionBits / 8, 420u);
}

TEST(Machine, TimingSkewInjectionShiftsPulses)
{
    // One extra CTPG delay cycle = 5 ns: every pulse lands 5 ns late
    // (the error AllXY is designed to catch).
    auto firstPulse = [](Cycle extra) {
        MachineConfig cfg;
        cfg.traceEnabled = true;
        cfg.ctpgDelayCycles = kCtpgDelayCycles + extra;
        QumaMachine m(cfg);
        m.loadAssembly("Wait 100\nPulse {q0}, X90\nWait 600\nhalt");
        m.run(1'000'000);
        return m.trace().pulses().at(0).t0Ns;
    };
    EXPECT_EQ(firstPulse(1) - firstPulse(0), 5);
}

} // namespace
} // namespace quma::core
