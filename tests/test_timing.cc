/**
 * @file
 * Unit tests for queue-based event timing control (paper §5.2):
 * exact label fire times, the implicit start label, hazard counting,
 * and the queue-state snapshots of paper Tables 2-4.
 */

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <random>

#include "common/logging.hh"
#include "timing/controller.hh"
#include "timing/wheel.hh"

namespace quma::timing {
namespace {

// ------------------------------------------------------------- EventQueue

TEST(EventQueue, FifoAndCapacity)
{
    EventQueue<PulseEvent> q(2);
    EXPECT_TRUE(q.push({1, 0x1, 0}));
    EXPECT_TRUE(q.push({2, 0x1, 1}));
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.push({3, 0x1, 2}));
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.front().label, 1u);
}

TEST(EventQueue, SaturationCounters)
{
    EventQueue<PulseEvent> q(2);
    EXPECT_EQ(q.pushFailed(), 0u);
    EXPECT_EQ(q.highWaterMark(), 0u);
    q.push({1, 0x1, 0});
    EXPECT_EQ(q.highWaterMark(), 1u);
    q.push({2, 0x1, 1});
    EXPECT_EQ(q.highWaterMark(), 2u);
    EXPECT_FALSE(q.push({3, 0x1, 2}));
    EXPECT_FALSE(q.push({4, 0x1, 3}));
    EXPECT_EQ(q.pushFailed(), 2u);

    // Draining does not lower the high-water mark...
    std::vector<PulseEvent> fired;
    std::size_t stale = 0;
    q.popMatching(1, fired, stale);
    EXPECT_EQ(q.highWaterMark(), 2u);
    // ...and clearStats zeroes both without touching the contents.
    q.clearStats();
    EXPECT_EQ(q.pushFailed(), 0u);
    EXPECT_EQ(q.highWaterMark(), 0u);
    EXPECT_EQ(q.size(), 1u);
}

TEST(TimingControllerStats, QueueStatsReportSaturation)
{
    TimingConfig cfg;
    cfg.pulseQueueCapacity = 2;
    cfg.numPulseQueues = 1;
    TimingController tcu(cfg);
    tcu.pushPulse(0, {1, 0x1, 0});
    tcu.pushPulse(0, {2, 0x1, 1});
    EXPECT_FALSE(tcu.pushPulse(0, {3, 0x1, 2}));

    TimingUnitStats stats = tcu.queueStats();
    ASSERT_EQ(stats.pulse.size(), 1u);
    EXPECT_EQ(stats.pulse[0].pushFailed, 1u);
    EXPECT_EQ(stats.pulse[0].highWater, 2u);
    EXPECT_EQ(stats.pulse[0].capacity, 2u);
    EXPECT_EQ(stats.totalPushFailed(), 1u);

    // reset() rewinds the counters with everything else.
    tcu.reset();
    EXPECT_EQ(tcu.queueStats().totalPushFailed(), 0u);
    EXPECT_EQ(tcu.queueStats().pulse[0].highWater, 0u);
}

TEST(EventQueue, PopMatchingTakesAllFrontMatches)
{
    EventQueue<PulseEvent> q(8);
    q.push({1, 0x1, 0});
    q.push({1, 0x2, 1});
    q.push({2, 0x1, 2});
    std::vector<PulseEvent> fired;
    std::size_t stale = 0;
    q.popMatching(1, fired, stale);
    EXPECT_EQ(fired.size(), 2u);
    EXPECT_EQ(stale, 0u);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PopMatchingDropsStale)
{
    EventQueue<PulseEvent> q(8);
    q.push({1, 0x1, 0});
    q.push({3, 0x1, 1});
    std::vector<PulseEvent> fired;
    std::size_t stale = 0;
    q.popMatching(3, fired, stale);
    EXPECT_EQ(stale, 1u);
    EXPECT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].label, 3u);
    // The drop is also counted on the queue itself, so stats paths
    // that never see the out-param still observe it.
    EXPECT_EQ(q.staleDropped(), 1u);
    q.clearStats();
    EXPECT_EQ(q.staleDropped(), 0u);
}

TEST(EventQueue, PopMatchingDropsAWholeStaleRunAtOnce)
{
    // Three orphans for labels that already passed, then the live
    // run, then a future event: one pop clears the orphans, takes
    // the full matching run, and leaves the future event queued.
    EventQueue<PulseEvent> q(8);
    q.push({1, 0x1, 0});
    q.push({2, 0x1, 1});
    q.push({2, 0x2, 2});
    q.push({5, 0x1, 3});
    q.push({5, 0x2, 4});
    q.push({9, 0x1, 5});
    std::vector<PulseEvent> fired;
    std::size_t stale = 0;
    q.popMatching(5, fired, stale);
    EXPECT_EQ(stale, 3u);
    EXPECT_EQ(q.staleDropped(), 3u);
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0].label, 5u);
    EXPECT_EQ(fired[1].label, 5u);
    ASSERT_EQ(q.size(), 1u);
    EXPECT_EQ(q.front().label, 9u);
}

TEST(EventQueue, PopMatchingLeavesFutureEventsUntouched)
{
    // Nothing matches and nothing is stale: the pop must be a
    // complete no-op -- no fires, no drops, contents intact.
    EventQueue<PulseEvent> q(8);
    q.push({7, 0x1, 0});
    q.push({8, 0x1, 1});
    std::vector<PulseEvent> fired;
    std::size_t stale = 0;
    q.popMatching(3, fired, stale);
    EXPECT_TRUE(fired.empty());
    EXPECT_EQ(stale, 0u);
    EXPECT_EQ(q.staleDropped(), 0u);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.front().label, 7u);
}

TEST(EventQueue, PopMatchingOnlyDropsStaleAheadOfTheMatch)
{
    // An out-of-order laggard BEHIND the matching run is not touched
    // by this pop -- stale dropping only clears the front run -- but
    // the NEXT pop retires it, and the counters accumulate across
    // both calls into the same out-param.
    EventQueue<PulseEvent> q(8);
    q.push({5, 0x1, 0});
    q.push({3, 0x1, 1}); // out of order: still behind label 5
    std::vector<PulseEvent> fired;
    std::size_t stale = 0;
    q.popMatching(5, fired, stale);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].label, 5u);
    EXPECT_EQ(stale, 0u);
    ASSERT_EQ(q.size(), 1u);
    EXPECT_EQ(q.front().label, 3u);

    q.popMatching(6, fired, stale);
    EXPECT_EQ(fired.size(), 1u); // nothing new fired
    EXPECT_EQ(stale, 1u);        // ...but the laggard was retired
    EXPECT_EQ(q.staleDropped(), 1u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StaleDropCounterAccumulatesAcrossPops)
{
    EventQueue<PulseEvent> q(8);
    std::vector<PulseEvent> fired;
    std::size_t stale = 0;
    for (TimingLabel label : {1u, 2u, 3u, 4u}) {
        q.push({label, 0x1, 0});
        q.popMatching(label + 1, fired, stale);
    }
    EXPECT_TRUE(fired.empty());
    EXPECT_EQ(stale, 4u);
    EXPECT_EQ(q.staleDropped(), 4u);
    // clearStats() resets the counter, not the queue's behaviour.
    q.clearStats();
    q.push({1, 0x1, 0});
    q.popMatching(2, fired, stale);
    EXPECT_EQ(q.staleDropped(), 1u);
}

TEST(TimingControllerStats, QueueStatsReportStaleDrops)
{
    // A queued pulse for label 1, but no time point ever broadcasts
    // label 1: when label 2 fires, popMatching drops the orphan as
    // stale, and that drop must surface in the queue stats.
    TimingController tcu;
    tcu.start(0);
    tcu.pushPulse(0, {1, 0x1, 0});
    tcu.pushPulse(0, {2, 0x1, 0});
    tcu.pushTimePoint(10, 2);
    tcu.advanceTo(10);
    TimingUnitStats stats = tcu.queueStats();
    EXPECT_EQ(stats.totalStaleDropped(), 1u);
    EXPECT_EQ(stats.pulse[0].staleDropped, 1u);
    tcu.reset();
    EXPECT_EQ(tcu.queueStats().totalStaleDropped(), 0u);
}

// --------------------------------------------------------------- controller

struct FireLog
{
    std::vector<std::pair<Cycle, PulseEvent>> pulses;
    std::vector<std::pair<Cycle, MpgEvent>> mpgs;
    std::vector<std::pair<Cycle, MdEvent>> mds;

    void
    attach(TimingController &tcu)
    {
        tcu.setPulseSink([this](unsigned, Cycle td,
                                const PulseEvent &ev) {
            pulses.emplace_back(td, ev);
        });
        tcu.setMpgSink([this](Cycle td, const MpgEvent &ev) {
            mpgs.emplace_back(td, ev);
        });
        tcu.setMdSink([this](unsigned, Cycle td, const MdEvent &ev) {
            mds.emplace_back(td, ev);
        });
    }
};

TEST(TimingController, FiresAtExactCumulativeCycles)
{
    TimingController tcu;
    FireLog log;
    log.attach(tcu);

    tcu.start(0);
    // Paper Figure 5 round 0: intervals 40000, 4, 4.
    tcu.pushTimePoint(40000, 1);
    tcu.pushTimePoint(4, 2);
    tcu.pushTimePoint(4, 3);
    tcu.pushPulse(0, {1, 0x1, 0});
    tcu.pushPulse(0, {2, 0x1, 0});
    tcu.pushMpg({3, 0x1, 300});
    tcu.pushMd(0, {3, 0x1, 7});

    tcu.advanceTo(39999);
    EXPECT_TRUE(log.pulses.empty());
    tcu.advanceTo(40000);
    ASSERT_EQ(log.pulses.size(), 1u);
    EXPECT_EQ(log.pulses[0].first, 40000u);
    tcu.advanceTo(40008);
    ASSERT_EQ(log.pulses.size(), 2u);
    EXPECT_EQ(log.pulses[1].first, 40004u);
    ASSERT_EQ(log.mpgs.size(), 1u);
    EXPECT_EQ(log.mpgs[0].first, 40008u);
    ASSERT_EQ(log.mds.size(), 1u);
    EXPECT_EQ(log.mds[0].first, 40008u);
    EXPECT_TRUE(tcu.violations().clean());
}

TEST(TimingController, ImplicitLabelZeroFiresAtStart)
{
    TimingController tcu;
    FireLog log;
    log.attach(tcu);
    tcu.pushPulse(0, {0, 0x1, 5});
    tcu.start(100);
    ASSERT_EQ(log.pulses.size(), 1u);
    EXPECT_EQ(log.pulses[0].first, 100u);
    EXPECT_EQ(tcu.lastBroadcastLabel(), 0u);
}

TEST(TimingController, MultipleEventsSameLabel)
{
    TimingController tcu;
    FireLog log;
    log.attach(tcu);
    tcu.start(0);
    tcu.pushTimePoint(10, 1);
    tcu.pushPulse(0, {1, 0x1, 0});
    tcu.pushPulse(0, {1, 0x2, 4});
    tcu.pushPulse(1, {1, 0x4, 5});
    tcu.advanceTo(10);
    EXPECT_EQ(log.pulses.size(), 3u);
}

TEST(TimingController, LatePointCountsViolation)
{
    TimingController tcu;
    FireLog log;
    log.attach(tcu);
    tcu.start(0);
    tcu.advanceTo(100);
    // A wait of 30 cycles arriving when TD is already at 100: due at
    // 30, i.e. 70 cycles late.
    tcu.pushTimePoint(30, 1);
    EXPECT_EQ(tcu.violations().latePoints, 1u);
    EXPECT_EQ(tcu.violations().totalLateCycles, 70u);
    tcu.advanceTo(101);
    EXPECT_EQ(tcu.lastBroadcastLabel(), 1u);
}

TEST(TimingController, StaleEventCountsViolation)
{
    TimingController tcu;
    FireLog log;
    log.attach(tcu);
    tcu.start(0);
    tcu.pushTimePoint(10, 1);
    tcu.advanceTo(10); // label 1 fired with no event waiting
    tcu.pushPulse(0, {1, 0x1, 0});
    EXPECT_EQ(tcu.violations().staleEvents, 1u);
    // The stale event was dropped, not queued.
    EXPECT_TRUE(tcu.pulseQueueSnapshot(0).empty());
}

TEST(TimingController, ChainedIntervalsAreRelative)
{
    TimingController tcu;
    FireLog log;
    log.attach(tcu);
    tcu.start(50);
    tcu.pushTimePoint(10, 1);
    tcu.pushTimePoint(20, 2);
    tcu.pushPulse(0, {1, 0x1, 0});
    tcu.pushPulse(0, {2, 0x1, 0});
    tcu.advanceTo(200);
    ASSERT_EQ(log.pulses.size(), 2u);
    EXPECT_EQ(log.pulses[0].first, 60u);
    EXPECT_EQ(log.pulses[1].first, 80u);
}

TEST(TimingController, QueueFullBackpressure)
{
    TimingConfig cfg;
    cfg.timingQueueCapacity = 2;
    TimingController tcu(cfg);
    tcu.start(0);
    EXPECT_TRUE(tcu.pushTimePoint(5, 1));
    EXPECT_TRUE(tcu.pushTimePoint(5, 2));
    EXPECT_TRUE(tcu.timingQueueFull());
    EXPECT_FALSE(tcu.pushTimePoint(5, 3));
    tcu.advanceTo(5);
    EXPECT_FALSE(tcu.timingQueueFull());
    EXPECT_TRUE(tcu.pushTimePoint(5, 3));
}

// -------------------------------------------------------------- EventWheel

TEST(EventWheel, PopsInCycleOrder)
{
    EventWheel w(4);
    w.schedule(0, 500);
    w.schedule(1, 3);
    w.schedule(2, 70000);
    w.schedule(3, 3000);
    std::vector<Cycle> cycles;
    while (auto p = w.popEarliest())
        cycles.push_back(p->cycle);
    EXPECT_EQ(cycles, (std::vector<Cycle>{3, 500, 3000, 70000}));
    EXPECT_TRUE(w.empty());
    EXPECT_EQ(w.stats().pops, 4u);
    EXPECT_EQ(w.stats().dispatched, 4u);
}

TEST(EventWheel, SameCycleSourcesFireAsOneMask)
{
    EventWheel w(8);
    w.schedule(1, 4096);
    w.schedule(3, 4096);
    w.schedule(6, 4096);
    w.schedule(0, 9999);
    auto p = w.popEarliest();
    ASSERT_TRUE(p);
    EXPECT_EQ(p->cycle, 4096u);
    EXPECT_EQ(p->sources, (1ull << 1) | (1ull << 3) | (1ull << 6));
    EXPECT_EQ(w.size(), 1u);
    auto q = w.popEarliest();
    ASSERT_TRUE(q);
    EXPECT_EQ(q->cycle, 9999u);
    EXPECT_EQ(q->sources, 1ull);
}

TEST(EventWheel, ReregistrationMovesTheDueCycle)
{
    EventWheel w(2);
    w.schedule(0, 100);
    EXPECT_EQ(w.dueCycle(0), 100u);
    // Later...
    w.schedule(0, 5000);
    EXPECT_EQ(w.dueCycle(0), 5000u);
    EXPECT_EQ(w.size(), 1u);
    // ...and earlier, across a level boundary.
    w.schedule(0, 7);
    EXPECT_EQ(w.dueCycle(0), 7u);
    auto p = w.popEarliest();
    ASSERT_TRUE(p);
    EXPECT_EQ(p->cycle, 7u);
    EXPECT_TRUE(w.empty());
}

TEST(EventWheel, PastDuesClampToTheCursor)
{
    EventWheel w(2);
    w.schedule(0, 1000);
    ASSERT_TRUE(w.popEarliest());
    EXPECT_EQ(w.cursor(), 1000u);
    w.schedule(1, 5); // already in the past: fires immediately
    auto p = w.popEarliest();
    ASSERT_TRUE(p);
    EXPECT_EQ(p->cycle, 1000u);
    EXPECT_EQ(p->sources, 1ull << 1);
}

TEST(EventWheel, CancelIsIdempotentAndUnregisters)
{
    EventWheel w(3);
    w.schedule(0, 10);
    w.schedule(1, 20);
    w.cancel(0);
    w.cancel(0);
    EXPECT_FALSE(w.registered(0));
    EXPECT_EQ(w.size(), 1u);
    auto p = w.popEarliest();
    ASSERT_TRUE(p);
    EXPECT_EQ(p->cycle, 20u);
    EXPECT_FALSE(w.popEarliest());
}

TEST(EventWheel, OverflowBeyondTheHorizonStillOrders)
{
    // Dues past 64^4 cycles from the cursor park in the overflow set
    // and must still pop in global order, including ties resolved
    // against in-wheel sources.
    EventWheel w(4);
    Cycle far = EventWheel::kHorizon * 3 + 12345;
    Cycle farther = EventWheel::kHorizon * 90 + 7;
    w.schedule(0, farther);
    w.schedule(1, far);
    w.schedule(2, 40);
    using Pop = std::pair<Cycle, std::uint64_t>;
    std::vector<Pop> popped;
    while (auto p = w.popEarliest())
        popped.emplace_back(p->cycle, p->sources);
    ASSERT_EQ(popped.size(), 3u);
    EXPECT_EQ(popped[0], (Pop{40, 1ull << 2}));
    EXPECT_EQ(popped[1], (Pop{far, 1ull << 1}));
    EXPECT_EQ(popped[2], (Pop{farther, 1ull}));
}

TEST(EventWheel, AgreesWithASortedModelOnRandomTraffic)
{
    // Randomized cross-check against a trivially correct model: the
    // wheel must always pop the minimum registered due.
    std::mt19937_64 gen(0x5eed);
    EventWheel w(16);
    std::map<unsigned, Cycle> model; // src -> due
    Cycle now = 0;
    for (int step = 0; step < 2000; ++step) {
        unsigned op = static_cast<unsigned>(gen() % 3);
        if (op != 0 || model.empty()) {
            auto src = static_cast<unsigned>(gen() % 16);
            // Mix of near, mid, far and past-horizon dues.
            static constexpr Cycle spans[] = {
                60, 4000, 200000, EventWheel::kHorizon * 2};
            Cycle when = now + gen() % spans[gen() % 4];
            w.schedule(src, when);
            model[src] = std::max(when, now);
        } else {
            std::optional<EventWheel::Popped> p = w.popEarliest();
            if (model.empty()) {
                EXPECT_FALSE(p);
                continue;
            }
            Cycle best = std::numeric_limits<Cycle>::max();
            for (auto &[src, duec] : model)
                best = std::min(best, duec);
            std::uint64_t mask = 0;
            for (auto it = model.begin(); it != model.end();)
                if (it->second == best) {
                    mask |= std::uint64_t{1} << it->first;
                    it = model.erase(it);
                } else {
                    ++it;
                }
            ASSERT_TRUE(p);
            EXPECT_EQ(p->cycle, best);
            EXPECT_EQ(p->sources, mask);
            now = best;
        }
    }
}

TEST(EventWheel, StatsTrackOccupancyAndClear)
{
    EventWheel w(4);
    w.schedule(0, 10);
    w.schedule(1, 10);
    w.schedule(2, 90000);
    EXPECT_EQ(w.stats().occupancy, 3u);
    EXPECT_EQ(w.stats().highWater, 3u);
    ASSERT_TRUE(w.popEarliest());
    EXPECT_EQ(w.stats().occupancy, 1u);
    EXPECT_EQ(w.stats().highWater, 3u);
    EXPECT_EQ(w.stats().dispatched, 2u);
    w.clearStats();
    EXPECT_EQ(w.stats().highWater, 1u);
    EXPECT_EQ(w.stats().dispatched, 0u);
    w.clear();
    EXPECT_TRUE(w.empty());
    EXPECT_FALSE(w.popEarliest());
    EXPECT_EQ(w.cursor(), 0u);
}

/**
 * Reproduce paper Tables 2-4: the queue contents of the AllXY
 * experiment before TD starts and after the first fires. Events are
 * pushed exactly as the QMB would for rounds 0 and 1.
 */
class AllxyQueueStateTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        log.attach(tcu);
        // Round 0: Wait 40000; Pulse I; Wait 4; Pulse I; Wait 4;
        //          MPG 300; MD r7.
        tcu.pushTimePoint(40000, 1);
        tcu.pushPulse(0, {1, 0x1, 0});
        tcu.pushTimePoint(4, 2);
        tcu.pushPulse(0, {2, 0x1, 0});
        tcu.pushTimePoint(4, 3);
        tcu.pushMpg({3, 0x1, 300});
        tcu.pushMd(0, {3, 0x1, 7});
        // Round 1: same with X180 (uop 1).
        tcu.pushTimePoint(40000, 4);
        tcu.pushPulse(0, {4, 0x1, 1});
        tcu.pushTimePoint(4, 5);
        tcu.pushPulse(0, {5, 0x1, 1});
        tcu.pushTimePoint(4, 6);
        tcu.pushMpg({6, 0x1, 300});
        tcu.pushMd(0, {6, 0x1, 7});
    }

    TimingController tcu;
    FireLog log;
};

TEST_F(AllxyQueueStateTest, Table2StateBeforeStart)
{
    auto timing = tcu.timingQueueSnapshot();
    ASSERT_EQ(timing.size(), 6u);
    EXPECT_EQ(timing[0], (TimePoint{40000, 1}));
    EXPECT_EQ(timing[1], (TimePoint{4, 2}));
    EXPECT_EQ(timing[2], (TimePoint{4, 3}));
    EXPECT_EQ(timing[3], (TimePoint{40000, 4}));
    EXPECT_EQ(timing[4], (TimePoint{4, 5}));
    EXPECT_EQ(timing[5], (TimePoint{4, 6}));

    auto pulses = tcu.pulseQueueSnapshot(0);
    ASSERT_EQ(pulses.size(), 4u);
    EXPECT_EQ(pulses[0], (PulseEvent{1, 0x1, 0})); // (I, 1)
    EXPECT_EQ(pulses[1], (PulseEvent{2, 0x1, 0})); // (I, 2)
    EXPECT_EQ(pulses[2], (PulseEvent{4, 0x1, 1})); // (Xpi, 4)
    EXPECT_EQ(pulses[3], (PulseEvent{5, 0x1, 1})); // (Xpi, 5)

    auto mpgs = tcu.mpgQueueSnapshot();
    ASSERT_EQ(mpgs.size(), 2u);
    EXPECT_EQ(mpgs[0].label, 3u);
    EXPECT_EQ(mpgs[1].label, 6u);

    auto mds = tcu.mdQueueSnapshot(0);
    ASSERT_EQ(mds.size(), 2u);
    EXPECT_EQ(mds[0].label, 3u);
    EXPECT_EQ(mds[0].destReg, 7);
    EXPECT_EQ(mds[1].label, 6u);
}

TEST_F(AllxyQueueStateTest, Table3StateAtTd40000)
{
    tcu.start(0);
    tcu.advanceTo(40000);
    // The first I fired; timing queue front is now (4, 2).
    auto timing = tcu.timingQueueSnapshot();
    ASSERT_EQ(timing.size(), 5u);
    EXPECT_EQ(timing[0], (TimePoint{4, 2}));
    auto pulses = tcu.pulseQueueSnapshot(0);
    ASSERT_EQ(pulses.size(), 3u);
    EXPECT_EQ(pulses[0], (PulseEvent{2, 0x1, 0}));
    // MPG/MD untouched.
    EXPECT_EQ(tcu.mpgQueueSnapshot().size(), 2u);
    EXPECT_EQ(tcu.mdQueueSnapshot(0).size(), 2u);
}

TEST_F(AllxyQueueStateTest, Table4StateAtTd40008)
{
    tcu.start(0);
    tcu.advanceTo(40008);
    // Labels 1-3 fired: both I pulses, the first MPG and MD.
    auto timing = tcu.timingQueueSnapshot();
    ASSERT_EQ(timing.size(), 3u);
    EXPECT_EQ(timing[0], (TimePoint{40000, 4}));
    auto pulses = tcu.pulseQueueSnapshot(0);
    ASSERT_EQ(pulses.size(), 2u);
    EXPECT_EQ(pulses[0], (PulseEvent{4, 0x1, 1}));
    EXPECT_EQ(tcu.mpgQueueSnapshot().size(), 1u);
    EXPECT_EQ(tcu.mpgQueueSnapshot()[0].label, 6u);
    EXPECT_EQ(tcu.mdQueueSnapshot(0).size(), 1u);
    EXPECT_TRUE(tcu.violations().clean());
}

TEST_F(AllxyQueueStateTest, FullDrainLeavesQueuesEmpty)
{
    tcu.start(0);
    tcu.advanceTo(80016);
    EXPECT_TRUE(tcu.allQueuesEmpty());
    EXPECT_EQ(log.pulses.size(), 4u);
    EXPECT_EQ(log.mpgs.size(), 2u);
    EXPECT_EQ(log.mds.size(), 2u);
    // Paper Table 5 fire times.
    EXPECT_EQ(log.pulses[2].first, 80008u);
    EXPECT_EQ(log.pulses[3].first, 80012u);
    EXPECT_EQ(log.mpgs[1].first, 80016u);
}

} // namespace
} // namespace quma::timing
