/**
 * @file
 * Unit tests for the analog signal chain: envelopes, waveforms, SSB
 * modulation, up/down conversion and data converters.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/logging.hh"
#include "signal/converters.hh"
#include "signal/envelope.hh"
#include "signal/modulation.hh"
#include "signal/waveform.hh"

namespace quma::signal {
namespace {

constexpr double kPi = std::numbers::pi;

// -------------------------------------------------------------- envelope

TEST(Envelope, GaussianPeaksAtCenterAndVanishesAtEnds)
{
    auto env = Envelope::gaussian(20.0, 1.0);
    EXPECT_NEAR(env.value(10.0), 1.0, 1e-12);
    EXPECT_NEAR(env.value(0.0), 0.0, 1e-12);
    EXPECT_NEAR(env.value(20.0), 0.0, 1e-12);
    EXPECT_DOUBLE_EQ(env.value(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(env.value(21.0), 0.0);
}

TEST(Envelope, GaussianSymmetric)
{
    auto env = Envelope::gaussian(20.0, 0.7);
    for (double t = 0; t <= 10.0; t += 0.5)
        EXPECT_NEAR(env.value(t), env.value(20.0 - t), 1e-12);
}

TEST(Envelope, DefaultSigmaIsQuarterDuration)
{
    auto env = Envelope::gaussian(20.0, 1.0);
    EXPECT_DOUBLE_EQ(env.sigmaNs(), 5.0);
}

TEST(Envelope, SquareIsConstant)
{
    auto env = Envelope::square(40.0, 0.3);
    EXPECT_DOUBLE_EQ(env.value(0.0), 0.3);
    EXPECT_DOUBLE_EQ(env.value(39.9), 0.3);
    EXPECT_DOUBLE_EQ(env.area(), 0.3 * 40.0);
}

TEST(Envelope, ZeroIsZero)
{
    auto env = Envelope::zero(20.0);
    EXPECT_DOUBLE_EQ(env.value(10.0), 0.0);
    EXPECT_DOUBLE_EQ(env.area(), 0.0);
}

TEST(Envelope, DerivativeIsAntisymmetric)
{
    auto env = Envelope::gaussianDerivative(20.0, 1.0);
    for (double t = 0.5; t < 10.0; t += 0.5)
        EXPECT_NEAR(env.value(10.0 - t), -env.value(10.0 + t), 1e-12);
    EXPECT_NEAR(env.area(), 0.0, 1e-12);
}

TEST(Envelope, SampleCountMatchesRate)
{
    auto env = Envelope::gaussian(20.0, 1.0);
    EXPECT_EQ(env.sample(1.0e9).size(), 20u);
    EXPECT_EQ(env.sample(200.0e6).size(), 4u);
}

TEST(Envelope, SampledSumApproximatesArea)
{
    auto env = Envelope::gaussian(20.0, 1.0);
    auto samples = env.sample(1.0e9);
    double sum = 0;
    for (double s : samples)
        sum += s; // dt = 1 ns
    EXPECT_NEAR(sum, env.area(), 0.05);
}

TEST(Envelope, RejectsBadParameters)
{
    setLogQuiet(true);
    EXPECT_THROW(Envelope::gaussian(0.0, 1.0), quma::FatalError);
    EXPECT_THROW(Envelope::gaussian(20.0, 1.0).sample(0.0),
                 quma::FatalError);
    setLogQuiet(false);
}

class EnvelopeKindTest
    : public ::testing::TestWithParam<EnvelopeKind>
{};

TEST_P(EnvelopeKindTest, NamesAreUnique)
{
    EXPECT_STRNE(toString(GetParam()), "unknown");
}

INSTANTIATE_TEST_SUITE_P(Kinds, EnvelopeKindTest,
                         ::testing::Values(
                             EnvelopeKind::Zero, EnvelopeKind::Square,
                             EnvelopeKind::Gaussian,
                             EnvelopeKind::GaussianDerivative));

// -------------------------------------------------------------- waveform

TEST(Waveform, BasicOps)
{
    Waveform a({1, 2, 3}, 1e9);
    Waveform b({1, 1}, 1e9);
    a += b;
    EXPECT_DOUBLE_EQ(a[0], 2);
    EXPECT_DOUBLE_EQ(a[1], 3);
    EXPECT_DOUBLE_EQ(a[2], 3);
    a *= 2.0;
    EXPECT_DOUBLE_EQ(a[0], 4);
    EXPECT_DOUBLE_EQ(a.peak(), 6);
}

TEST(Waveform, DurationAndIntegral)
{
    Waveform w({1, 1, 1, 1}, 200e6); // 5 ns samples
    EXPECT_DOUBLE_EQ(w.durationNs(), 20.0);
    EXPECT_DOUBLE_EQ(w.integral(), 20.0);
}

TEST(Waveform, AppendChecksRate)
{
    setLogQuiet(true);
    Waveform a({1}, 1e9);
    Waveform b({2}, 2e9);
    EXPECT_THROW(a.append(b), quma::PanicError);
    setLogQuiet(false);
}

// ------------------------------------------------------------ modulation

TEST(Modulation, SsbQuadraturePair)
{
    auto env = Envelope::square(100.0, 1.0);
    Waveform base(env.sample(1e9), 1e9);
    auto [i, q] = ssbModulate(base, 50e6, 0.0, 0.0);
    // I^2 + Q^2 should recover the envelope squared.
    for (std::size_t k = 0; k < i.size(); ++k)
        EXPECT_NEAR(i[k] * i[k] + q[k] * q[k], 1.0, 1e-9);
}

TEST(Modulation, SsbPhaseSelectsQuadrature)
{
    auto env = Envelope::square(100.0, 1.0);
    Waveform base(env.sample(1e9), 1e9);
    auto [ix, qx] = ssbModulate(base, 50e6, 0.0, 0.0);
    auto [iy, qy] = ssbModulate(base, 50e6, 0.0, kPi / 2);
    // A 90-degree envelope phase swaps I into Q.
    for (std::size_t k = 0; k < ix.size(); ++k) {
        EXPECT_NEAR(iy[k], -qx[k], 1e-9);
        EXPECT_NEAR(qy[k], ix[k], 1e-9);
    }
}

TEST(Modulation, UpconversionProducesSingleSideband)
{
    // With I = cos, Q = sin the upconverted tone sits at fc + fssb
    // only; demodulating at the image (fc - fssb) gives nothing.
    const double fc = 300e6, fssb = 50e6;
    auto env = Envelope::square(1000.0, 1.0);
    Waveform base(env.sample(10e9), 10e9);
    auto [i, q] = ssbModulate(base, fssb, 0.0, 0.0);
    Waveform rf = iqUpconvert(i, q, fc, 0.0);

    auto atTone = demodulate(rf, fc + fssb);
    auto atImage = demodulate(rf, fc - fssb);
    EXPECT_NEAR(std::abs(atTone), 1.0, 0.02);
    EXPECT_LT(std::abs(atImage), 0.02);
}

TEST(Modulation, DemodulateRecoversAmplitudeAndPhase)
{
    const double f = 40e6;
    const double rate = 200e6;
    std::vector<double> samples(300);
    for (std::size_t k = 0; k < samples.size(); ++k) {
        double t = (k + 0.5) / rate;
        samples[k] = 3.0 * std::cos(2 * kPi * f * t + 0.7);
    }
    auto z = demodulate(Waveform(samples, rate), f);
    EXPECT_NEAR(std::abs(z), 3.0, 0.01);
    EXPECT_NEAR(std::arg(z), 0.7, 0.01);
}

TEST(Modulation, ComplexBaseband)
{
    Waveform i({1, 2}, 1e9), q({3, 4}, 1e9);
    auto c = complexBaseband(i, q);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_DOUBLE_EQ(c[0].real(), 1);
    EXPECT_DOUBLE_EQ(c[0].imag(), 3);
    EXPECT_DOUBLE_EQ(c[1].imag(), 4);
}

// ------------------------------------------------------------ converters

class QuantizerBitsTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(QuantizerBitsTest, RoundTripWithinLsb)
{
    unsigned bits = GetParam();
    Quantizer quant(bits, 1.0);
    for (double x = -1.0; x <= 1.0; x += 0.01) {
        double y = quant.quantize(x);
        EXPECT_LE(std::abs(y - x), quant.lsb() * 0.5 + 1e-12);
    }
}

TEST_P(QuantizerBitsTest, Saturates)
{
    unsigned bits = GetParam();
    Quantizer quant(bits, 1.0);
    EXPECT_LE(quant.quantize(2.0), 1.0 + quant.lsb());
    EXPECT_GE(quant.quantize(-2.0), -1.0 - quant.lsb());
    EXPECT_DOUBLE_EQ(quant.quantize(2.0), quant.quantize(5.0));
}

INSTANTIATE_TEST_SUITE_P(Resolutions, QuantizerBitsTest,
                         ::testing::Values(8u, 12u, 14u, 16u));

TEST(Quantizer, CodesAreMonotonic)
{
    Quantizer quant(8, 1.0);
    std::int32_t prev = quant.code(-1.0);
    for (double x = -0.99; x <= 1.0; x += 0.01) {
        std::int32_t c = quant.code(x);
        EXPECT_GE(c, prev);
        prev = c;
    }
}

TEST(Quantizer, RejectsBadConfig)
{
    setLogQuiet(true);
    EXPECT_THROW(Quantizer(0, 1.0), quma::FatalError);
    EXPECT_THROW(Quantizer(8, -1.0), quma::FatalError);
    setLogQuiet(false);
}

TEST(Dac, RendersQuantized)
{
    Dac dac(14, 1.0, 1e9);
    auto w = dac.render({0.5, -0.25, 0.0});
    ASSERT_EQ(w.size(), 3u);
    EXPECT_NEAR(w[0], 0.5, dac.quantizer().lsb());
    EXPECT_NEAR(w[1], -0.25, dac.quantizer().lsb());
    EXPECT_DOUBLE_EQ(w.rateHz(), 1e9);
}

TEST(Adc, ResamplesAndQuantizes)
{
    // 1 GSa/s input digitised at 200 MSa/s: every 5th sample.
    std::vector<double> in(50);
    for (std::size_t k = 0; k < in.size(); ++k)
        in[k] = static_cast<double>(k) / 50.0;
    Adc adc(8, 1.0, 200e6);
    auto out = adc.digitize(Waveform(in, 1e9));
    ASSERT_EQ(out.size(), 10u);
    EXPECT_NEAR(out[1], in[5], 0.02);
    EXPECT_NEAR(out[9], in[45], 0.02);
}

TEST(Adc, EmptyInput)
{
    Adc adc(8, 1.0, 200e6);
    auto out = adc.digitize(Waveform({}, 1e9));
    EXPECT_TRUE(out.empty());
}

} // namespace
} // namespace quma::signal
