/**
 * @file
 * Unit tests for the register file and the execution controller's
 * classical instruction semantics, including the MD scoreboard
 * interlock.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/assembler.hh"
#include "quma/execcontroller.hh"
#include "quma/machine.hh"

namespace quma::core {
namespace {

// ------------------------------------------------------------ registerfile

TEST(RegisterFile, R0IsHardwiredZero)
{
    RegisterFile rf;
    rf.write(0, 123);
    EXPECT_EQ(rf.read(0), 0);
    rf.markPending(0);
    EXPECT_FALSE(rf.pending(0));
}

TEST(RegisterFile, ReadWrite)
{
    RegisterFile rf;
    rf.write(7, -42);
    EXPECT_EQ(rf.read(7), -42);
    rf.reset();
    EXPECT_EQ(rf.read(7), 0);
}

TEST(RegisterFile, PendingCountsDown)
{
    RegisterFile rf;
    rf.markPending(7, 2);
    EXPECT_TRUE(rf.pending(7));
    rf.writeBack(7, 1, false, 0);
    EXPECT_TRUE(rf.pending(7));
    rf.writeBack(7, 1, false, 1);
    EXPECT_FALSE(rf.pending(7));
    EXPECT_EQ(rf.read(7), 0b11);
}

TEST(RegisterFile, OverwriteVsBitWriteback)
{
    RegisterFile rf;
    rf.write(5, 0xff);
    rf.writeBack(5, 0, true, 0);
    EXPECT_EQ(rf.read(5), 0);
    rf.write(5, 0b100);
    rf.writeBack(5, 1, false, 1);
    EXPECT_EQ(rf.read(5), 0b110);
    rf.writeBack(5, 0, false, 2);
    EXPECT_EQ(rf.read(5), 0b010);
}

// -------------------------------------------------- classical ISA semantics

/**
 * Run a pure-classical program on a minimal machine and return the
 * machine for register/memory inspection.
 */
struct ExecCase
{
    const char *name;
    const char *source;
    RegIndex reg;
    std::int64_t expected;
};

class ClassicalSemantics : public ::testing::TestWithParam<ExecCase>
{};

TEST_P(ClassicalSemantics, ComputesExpectedValue)
{
    const auto &c = GetParam();
    MachineConfig cfg;
    QumaMachine m(cfg);
    m.loadAssembly(std::string(c.source) + "\nhalt\n");
    auto result = m.run(1'000'000);
    EXPECT_TRUE(result.halted);
    EXPECT_EQ(m.registers().read(c.reg), c.expected) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, ClassicalSemantics,
    ::testing::Values(
        ExecCase{"mov", "mov r1, 42", 1, 42},
        ExecCase{"mov_negative", "mov r1, -17", 1, -17},
        ExecCase{"add", "mov r1, 5\nmov r2, 7\nadd r3, r1, r2", 3, 12},
        ExecCase{"addi", "mov r1, 5\naddi r1, r1, 1", 1, 6},
        ExecCase{"sub", "mov r1, 5\nmov r2, 7\nsub r3, r1, r2", 3, -2},
        ExecCase{"and", "mov r1, 12\nmov r2, 10\nand r3, r1, r2", 3, 8},
        ExecCase{"or", "mov r1, 12\nmov r2, 10\nor r3, r1, r2", 3, 14},
        ExecCase{"xor", "mov r1, 12\nmov r2, 10\nxor r3, r1, r2", 3, 6},
        ExecCase{"shl", "mov r1, 3\nshl r2, r1, 4", 2, 48},
        ExecCase{"shr", "mov r1, 48\nshr r2, r1, 4", 2, 3},
        ExecCase{"store_load",
                 "mov r1, 99\nmov r2, 8\nstore r1, r2[2]\n"
                 "load r3, r2[2]",
                 3, 99},
        ExecCase{"beq_taken",
                 "mov r1, 1\nmov r2, 1\nbeq r1, r2, skip\nmov r3, 5\n"
                 "skip:\naddi r3, r3, 1",
                 3, 1},
        ExecCase{"bne_not_taken",
                 "mov r1, 1\nmov r2, 1\nbne r1, r2, skip\nmov r3, 5\n"
                 "skip:\naddi r3, r3, 1",
                 3, 6},
        ExecCase{"blt", "mov r1, -2\nmov r2, 3\nblt r1, r2, skip\n"
                        "mov r3, 9\nskip:\naddi r3, r3, 1",
                 3, 1},
        ExecCase{"bge", "mov r1, 3\nmov r2, 3\nbge r1, r2, skip\n"
                        "mov r3, 9\nskip:\naddi r3, r3, 1",
                 3, 1},
        ExecCase{"loop_sum",
                 "mov r1, 0\nmov r2, 10\nmov r3, 0\n"
                 "L:\nadd r3, r3, r1\naddi r1, r1, 1\nbne r1, r2, L",
                 3, 45},
        ExecCase{"r0_ignores_writes", "mov r0, 7\nadd r1, r0, r0", 1,
                 0}),
    [](const auto &info) { return info.param.name; });

TEST(ExecController, HaltStopsExecution)
{
    MachineConfig cfg;
    QumaMachine m(cfg);
    m.loadAssembly("mov r1, 1\nhalt\nmov r1, 2\n");
    m.run(10000);
    EXPECT_EQ(m.registers().read(1), 1);
}

TEST(ExecController, RunsOffEndHalts)
{
    MachineConfig cfg;
    QumaMachine m(cfg);
    m.loadAssembly("mov r1, 3");
    auto r = m.run(10000);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(m.registers().read(1), 3);
}

TEST(ExecController, QNopRegRejectsNonPositiveWait)
{
    setLogQuiet(true);
    MachineConfig cfg;
    QumaMachine m(cfg);
    m.loadAssembly("mov r15, 0\nQNopReg r15\nhalt");
    EXPECT_THROW(m.run(10000), FatalError);
    setLogQuiet(false);
}

TEST(ExecController, DataMemoryBoundsChecked)
{
    setLogQuiet(true);
    MachineConfig cfg;
    cfg.exec.dataMemoryWords = 16;
    QumaMachine m(cfg);
    m.loadAssembly("mov r1, 100\nstore r1, r1[0]\nhalt");
    EXPECT_THROW(m.run(10000), FatalError);
    setLogQuiet(false);
}

TEST(ExecController, StatsCountInstructionKinds)
{
    MachineConfig cfg;
    QumaMachine m(cfg);
    m.loadAssembly(R"(
        mov r1, 1
        Wait 10
        Pulse {q0}, I
        Wait 500
        halt
    )");
    m.run(100000);
    const auto &stats = m.execController().stats();
    EXPECT_EQ(stats.quantumDispatched, 3u);
    EXPECT_GE(stats.classicalExecuted, 2u);
}

TEST(ExecController, MdScoreboardStallsReader)
{
    // The add reading r7 must wait for the MD write-back: r2 must
    // reflect whatever the MDU produced, never the stale pre-MD
    // value of r7 (which is poisoned to 55 first).
    MachineConfig cfg;
    QumaMachine m(cfg);
    m.loadAssembly(R"(
        mov r7, 55
        Wait 10
        Pulse {q0}, X180
        Wait 10
        MPG {q0}, 300
        MD {q0}, r7
        mov r1, 100
        add r2, r7, r1
        Wait 600
        halt
    )");
    auto r = m.run(1'000'000);
    EXPECT_TRUE(r.halted);
    EXPECT_GT(m.execController().stats().registerStalls, 0u);
    std::int64_t bit = m.registers().read(7);
    EXPECT_TRUE(bit == 0 || bit == 1);
    EXPECT_EQ(m.registers().read(2), bit + 100);
}

TEST(ExecController, VliwIssueWidthExecutesFaster)
{
    auto countCycles = [](unsigned width) {
        MachineConfig cfg;
        cfg.exec.issueWidth = width;
        QumaMachine m(cfg);
        // A purely classical burst: no quantum backpressure.
        std::string src;
        for (int i = 0; i < 64; ++i)
            src += "addi r1, r1, 1\n";
        src += "halt";
        m.loadAssembly(src);
        return m.run(100000).cyclesRun;
    };
    EXPECT_LT(countCycles(4), countCycles(1));
}

} // namespace
} // namespace quma::core
