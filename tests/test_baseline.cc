/**
 * @file
 * Unit tests for the baseline controllers: the conventional
 * full-waveform method (paper §5.1.1 memory arithmetic) and the
 * APS2-style distributed model (paper §6 comparison).
 */

#include <gtest/gtest.h>

#include "baseline/aps2_model.hh"
#include "baseline/waveform_method.hh"
#include "common/logging.hh"

namespace quma::baseline {
namespace {

// -------------------------------------------------------- waveform method

TEST(WaveformMethod, PaperAllxyMemoryNumbers)
{
    ConventionalAwgController awg;
    // 21 combinations x 2 gates x 20 ns at 1 GSa/s, 12-bit: 2520 B.
    EXPECT_EQ(awg.bytesFor(21, 2, 20.0), 2520u);
    // The codeword scheme's 7 primitives: 420 B.
    EXPECT_EQ(awg.bytesFor(7, 1, 20.0), 420u);
}

TEST(WaveformMethod, UploadAccounting)
{
    ConventionalAwgController awg(1.0e9, 12, 30.0e6);
    for (int i = 0; i < 21; ++i)
        awg.uploadWaveform("combo" + std::to_string(i), 2, 20.0);
    auto stats = awg.stats();
    EXPECT_EQ(stats.waveforms, 21u);
    EXPECT_EQ(stats.sampleCount, 21u * 2 * 2 * 20);
    EXPECT_EQ(stats.bytes, 2520u);
    EXPECT_NEAR(stats.uploadSeconds, 2520.0 / 30.0e6, 1e-12);
}

TEST(WaveformMethod, SmallChangeForcesFullReupload)
{
    ConventionalAwgController awg;
    awg.uploadWaveform("a", 2, 20.0);
    awg.uploadWaveform("b", 2, 20.0);
    EXPECT_EQ(awg.stats().waveforms, 2u);
    awg.clear(); // the "small change" penalty
    EXPECT_EQ(awg.stats().bytes, 0u);
}

TEST(WaveformMethod, MemoryGrowsWithCombinations)
{
    ConventionalAwgController awg;
    // Waveform memory scales linearly with combination count while
    // the codeword LUT stays constant: the paper's scalability
    // argument.
    std::size_t at10 = awg.bytesFor(10, 2, 20.0);
    std::size_t at100 = awg.bytesFor(100, 2, 20.0);
    EXPECT_EQ(at100, at10 * 10);
}

TEST(WaveformMethod, RejectsBadConfig)
{
    setLogQuiet(true);
    EXPECT_THROW(ConventionalAwgController(0, 12, 1), FatalError);
    setLogQuiet(false);
}

// -------------------------------------------------------------- APS2 model

DistributedWorkload
twoQubitWorkload(unsigned segments, bool barriers)
{
    DistributedWorkload w;
    w.numQubits = 2;
    for (unsigned s = 0; s < segments; ++s) {
        DistributedWorkload::Segment seg;
        seg.pulseCycles = {4, (s % 2 == 0) ? Cycle{4} : Cycle{0}};
        seg.gapCycles = 4;
        seg.barrier = barriers && (s % 2 == 0);
        w.segments.push_back(seg);
    }
    return w;
}

TEST(Aps2, OneBinaryPerModule)
{
    Aps2System sys(9, 4);
    auto binaries = sys.compileWorkload(twoQubitWorkload(4, true));
    EXPECT_EQ(binaries.size(), 2u);
    EXPECT_EQ(binaries[0].module, "APS2-0");
}

TEST(Aps2, CapacityEnforced)
{
    setLogQuiet(true);
    Aps2System sys(2, 4);
    DistributedWorkload w;
    w.numQubits = 3;
    EXPECT_THROW(sys.compileWorkload(w), FatalError);
    setLogQuiet(false);
}

TEST(Aps2, SyncStallsGrowWithTriggerLatency)
{
    auto stalls = [](Cycle latency) {
        Aps2System sys(9, latency);
        auto binaries = sys.compileWorkload(twoQubitWorkload(8, true));
        return sys.run(binaries).stallCycles;
    };
    EXPECT_GT(stalls(16), stalls(2));
}

TEST(Aps2, MakespanIncludesTriggerLatency)
{
    Aps2System fast(9, 0);
    Aps2System slow(9, 10);
    auto w = twoQubitWorkload(6, true);
    auto mFast = fast.run(fast.compileWorkload(w)).makespanCycles;
    auto mSlow = slow.run(slow.compileWorkload(w)).makespanCycles;
    EXPECT_GT(mSlow, mFast);
}

TEST(Aps2, NoBarriersNoStalls)
{
    Aps2System sys(9, 8);
    auto binaries = sys.compileWorkload(twoQubitWorkload(6, false));
    auto stats = sys.run(binaries);
    EXPECT_EQ(stats.syncPoints, 0u);
    EXPECT_EQ(stats.stallCycles, 0u);
}

TEST(Aps2, IdleWaveformsPadInactiveQubits)
{
    Aps2System sys(9, 4);
    auto binaries = sys.compileWorkload(twoQubitWorkload(2, false));
    // Qubit 1 idles in segment 1: it must still hold an instruction
    // (idle waveform) to preserve alignment.
    EXPECT_EQ(binaries[0].instructions.size(),
              binaries[1].instructions.size());
}

TEST(CentralizedCost, FewerInstructionsThanDistributed)
{
    auto w = twoQubitWorkload(10, true);
    Aps2System sys(9, 4);
    auto distributed = sys.run(sys.compileWorkload(w));
    auto central = centralizedCost(w);
    EXPECT_EQ(central.binaries, 1u);
    EXPECT_GT(distributed.binaries, central.binaries);
    EXPECT_LT(central.totalInstructions,
              distributed.totalInstructions);
}

TEST(CentralizedCost, MakespanIsSumOfSegments)
{
    DistributedWorkload w;
    w.numQubits = 2;
    DistributedWorkload::Segment seg;
    seg.pulseCycles = {4, 4};
    seg.gapCycles = 6;
    w.segments = {seg, seg};
    auto c = centralizedCost(w);
    EXPECT_EQ(c.makespanCycles, 20u);
}

} // namespace
} // namespace quma::baseline
