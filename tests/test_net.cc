/**
 * @file
 * Tests of the network serving layer: wire-format round-trips for
 * every message type, defensive rejection of malformed frames
 * (truncated, oversized, bad magic, foreign version -- no UB),
 * wire-v2 version negotiation (a v1 frame without a requestId is
 * answered with a clean VersionMismatch error frame), truncation
 * fuzzing of the 20-byte multiplexed header, the in-process
 * loopback transport, the server's request dispatch and
 * cancel-on-disconnect, and -- the acceptance invariants -- a
 * sharded, priority-tagged AllXY job submitted through QumaClient
 * over a real TCP loopback connection producing the bit-identical
 * JobResult the in-process ExperimentService produces, and a whole
 * sweep PIPELINED over one connection with results streamed back by
 * server push (no polling) matching the in-process path bit for
 * bit.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>

#include "common/logging.hh"
#include "experiments/allxy.hh"
#include "experiments/coherence.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "net/transport.hh"
#include "net/wire.hh"
#include "runtime/service.hh"

namespace quma::net {
namespace {

using runtime::ExperimentService;
using runtime::JobPriority;
using runtime::JobResult;
using runtime::JobSpec;
using runtime::JobStatus;
using runtime::ServiceConfig;

/** A small averaged measurement program (rounds x X180-measure). */
std::string
shotProgram(unsigned rounds)
{
    return R"(
        mov r15, 40000
        mov r1, 0
        mov r2, )" +
           std::to_string(rounds) + R"(
        L:
        QNopReg r15
        Pulse {q0}, X180
        Wait 4
        MPG {q0}, 300
        MD {q0}, r7
        Wait 600
        addi r1, r1, 1
        bne r1, r2, L
        halt
    )";
}

JobSpec
shotJob(unsigned rounds, std::uint64_t seed)
{
    JobSpec job;
    job.name = "shots";
    job.assembly = shotProgram(rounds);
    job.bins = 1;
    job.seed = seed;
    job.maxCycles = 50'000'000;
    return job;
}

/** A JobSpec exercising every serialized field non-trivially. */
JobSpec
fancySpec()
{
    JobSpec spec;
    spec.name = "fancy";
    spec.assembly = "Wait 10\nhalt";
    spec.machine.qubits.assign(2, qsim::paperQubitParams());
    spec.machine.qubits[1].freqHz = 5.1e9;
    spec.machine.qubits[1].readout.c1 = {-0.75, 0.25};
    spec.machine.qubits[1].readout.noiseSigma = 2.5;
    spec.machine.driveAwg = {2, 0};
    spec.machine.gateWaitCycles = 5;
    spec.machine.amplitudeError = 0.03;
    spec.machine.carrierDetuningHz = -1.25e5;
    spec.machine.msmtPathDelayCycles = -1;
    spec.machine.exec.stallInjection = true;
    spec.machine.exec.stallProbability = 0.05;
    spec.machine.timing.pulseQueueCapacity = 128;
    spec.machine.chipSeed = 0x1234;
    spec.bins = 42;
    spec.seed = 0xfeedface;
    spec.maxCycles = 123'456'789;
    spec.rounds = 96;
    spec.shards = 3;
    spec.minRoundsPerShard = 4;
    spec.priority = JobPriority::High;
    return spec;
}

// --- wire primitives --------------------------------------------------------

TEST(Wire, PrimitivesRoundTrip)
{
    Writer w;
    w.u8(0xab);
    w.u16(0xbeef);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefULL);
    w.i64(-42);
    w.f64(-1.5e-300);
    w.boolean(true);
    const std::string embeddedNul("hello \0 wire", 12);
    w.str(embeddedNul);
    w.vecF64({1.0, -0.0, 2.5});
    w.vecU64({7, 0, 9});

    Reader r(w.bytes());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0xbeef);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_EQ(r.f64(), -1.5e-300);
    EXPECT_TRUE(r.boolean());
    EXPECT_EQ(r.str(), embeddedNul);
    EXPECT_EQ(r.vecF64(), (std::vector<double>{1.0, -0.0, 2.5}));
    EXPECT_EQ(r.vecU64(), (std::vector<std::size_t>{7, 0, 9}));
    EXPECT_NO_THROW(r.expectEnd());
}

TEST(Wire, IntegersAreLittleEndianOnTheWire)
{
    Writer w;
    w.u32(0x01020304u);
    ASSERT_EQ(w.bytes().size(), 4u);
    EXPECT_EQ(w.bytes()[0], 0x04);
    EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(Wire, ReaderRejectsTruncation)
{
    Writer w;
    w.u32(7);
    Reader r(w.bytes());
    EXPECT_EQ(r.u16(), 7);
    EXPECT_THROW(r.u32(), WireError);

    // A string length claiming more bytes than the payload holds.
    Writer s;
    s.u32(1000);
    Reader rs(s.bytes());
    EXPECT_THROW(rs.str(), WireError);

    // A vector length that would overflow the payload must be
    // rejected BEFORE any allocation happens.
    Writer v;
    v.u32(0x40000000u);
    Reader rv(v.bytes());
    EXPECT_THROW(rv.vecF64(), WireError);
}

TEST(Wire, ReaderRejectsTrailingGarbage)
{
    Writer w;
    w.u64(1);
    w.u8(0);
    Reader r(w.bytes());
    (void)r.u64();
    EXPECT_THROW(r.expectEnd(), WireError);
}

TEST(Wire, BooleanRejectsJunkByte)
{
    Writer w;
    w.u8(2);
    Reader r(w.bytes());
    EXPECT_THROW(r.boolean(), WireError);
}

// --- frame header -----------------------------------------------------------

TEST(Wire, FrameHeaderRoundTrip)
{
    Writer payload;
    payload.u64(99);
    std::vector<std::uint8_t> frame =
        sealFrame(MsgType::AwaitRequest, 0x1122334455667788ull,
                  payload);
    ASSERT_EQ(frame.size(), kFrameHeaderBytes + 8);
    FrameHeader fh = decodeFrameHeader(frame.data());
    EXPECT_EQ(fh.type, MsgType::AwaitRequest);
    EXPECT_EQ(fh.length, 8u);
    // The v2 demux key survives the trip exactly.
    EXPECT_EQ(fh.requestId, 0x1122334455667788ull);
}

TEST(Wire, FrameHeaderRejectsBadMagic)
{
    std::vector<std::uint8_t> frame =
        sealFrame(MsgType::StatsRequest, 1, Writer{});
    frame[0] ^= 0xff;
    EXPECT_THROW(decodeFrameHeader(frame.data()), WireError);
}

TEST(Wire, FrameHeaderRejectsForeignVersion)
{
    std::vector<std::uint8_t> frame =
        sealFrame(MsgType::StatsRequest, 1, Writer{});
    frame[4] = static_cast<std::uint8_t>(kWireVersion + 1);
    // A foreign version throws the SUBCLASS carrying the peer's
    // version, so a server can answer before hanging up.
    try {
        decodeFrameHeader(frame.data());
        FAIL() << "foreign version must be rejected";
    } catch (const WireVersionError &ex) {
        EXPECT_EQ(ex.peerVersion, kWireVersion + 1);
    }
    // The legacy v1 value is equally foreign to a v2 speaker.
    frame[4] = 1;
    EXPECT_THROW(decodeFrameHeader(frame.data()), WireVersionError);
}

TEST(Wire, FrameHeaderRejectsUnknownType)
{
    std::vector<std::uint8_t> frame =
        sealFrame(MsgType::StatsRequest, 1, Writer{});
    frame[6] = 60; // inside the request range but unassigned
    EXPECT_THROW(decodeFrameHeader(frame.data()), WireError);
}

TEST(Wire, FrameHeaderRejectsOversizedLength)
{
    std::vector<std::uint8_t> frame =
        sealFrame(MsgType::StatsRequest, 1, Writer{});
    // Patch the length field to just past the cap.
    Writer len;
    len.u32(kMaxPayloadBytes + 1);
    std::copy(len.bytes().begin(), len.bytes().end(),
              frame.begin() + 8);
    EXPECT_THROW(decodeFrameHeader(frame.data()), WireError);
}

// --- message payloads -------------------------------------------------------

TEST(Wire, JobSpecRoundTripIsLossless)
{
    JobSpec spec = fancySpec();
    Writer w;
    encodeJobSpec(w, spec);
    Reader r(w.bytes());
    JobSpec back = decodeJobSpec(r);
    EXPECT_NO_THROW(r.expectEnd());

    EXPECT_EQ(back.name, spec.name);
    EXPECT_EQ(back.assembly, spec.assembly);
    EXPECT_EQ(back.bins, spec.bins);
    EXPECT_EQ(back.seed, spec.seed);
    EXPECT_EQ(back.maxCycles, spec.maxCycles);
    EXPECT_EQ(back.rounds, spec.rounds);
    EXPECT_EQ(back.shards, spec.shards);
    EXPECT_EQ(back.minRoundsPerShard, spec.minRoundsPerShard);
    EXPECT_EQ(back.priority, spec.priority);
    // The machine configuration must survive bit-exactly: the shard
    // key is built from exact bit patterns.
    EXPECT_EQ(runtime::configKey(back.machine),
              runtime::configKey(spec.machine));
    EXPECT_EQ(back.machine.exec.seed, spec.machine.exec.seed);
    EXPECT_EQ(back.machine.chipSeed, spec.machine.chipSeed);

    // And re-encoding the decoded spec reproduces the same bytes.
    Writer again;
    encodeJobSpec(again, back);
    EXPECT_EQ(again.bytes(), w.bytes());
}

TEST(Wire, JobSpecRejectsPreassembledProgram)
{
    JobSpec spec = fancySpec();
    spec.program.emplace();
    Writer w;
    EXPECT_THROW(encodeJobSpec(w, spec), WireError);
}

TEST(Wire, JobSpecRejectsUnknownPriority)
{
    JobSpec spec = fancySpec();
    Writer w;
    encodeJobSpec(w, spec);
    std::vector<std::uint8_t> bytes = w.bytes();
    bytes.back() = 9; // priority is the final byte
    Reader r(bytes.data(), bytes.size());
    EXPECT_THROW(decodeJobSpec(r), WireError);
}

TEST(Wire, JobSpecRejectsResourceBombValues)
{
    // A tiny frame claiming astronomical shard/round counts must be
    // refused at decode time: the scheduler would otherwise build
    // one task per shard (the denial-of-service vector).
    auto encodeWith = [](std::uint64_t bins, std::uint64_t rounds,
                         std::uint64_t shards) {
        Writer w;
        w.str("evil");
        w.str("halt");
        encodeMachineConfig(w, core::MachineConfig{});
        w.u64(bins);
        w.u64(0x5eed);     // seed
        w.u64(1'000'000);  // maxCycles
        w.u64(rounds);
        w.u64(shards);
        w.u64(1); // minRoundsPerShard
        w.u8(1);  // priority Normal
        return w.bytes();
    };

    auto expectRejected = [&](std::uint64_t bins, std::uint64_t rounds,
                              std::uint64_t shards) {
        std::vector<std::uint8_t> bytes =
            encodeWith(bins, rounds, shards);
        Reader r(bytes.data(), bytes.size());
        EXPECT_THROW(decodeJobSpec(r), WireError);
    };
    expectRejected(1, 100'000'000, 100'000'000); // shard bomb
    expectRejected(1, kMaxWireRounds + 1, 1);
    expectRejected(kMaxWireBins + 1, 0, 1);
    expectRejected(1u << 16, 1u << 16, 1); // rounds x bins bomb

    // Sanity: legitimate paper-scale values still decode.
    std::vector<std::uint8_t> ok = encodeWith(42, 25600, 8);
    Reader r(ok.data(), ok.size());
    EXPECT_NO_THROW(decodeJobSpec(r));
}

TEST(Wire, JobResultRoundTrip)
{
    JobResult result;
    result.run.cyclesRun = 123456;
    result.run.halted = true;
    result.run.violations.latePoints = 3;
    result.run.violations.staleEvents = 1;
    result.run.violations.totalLateCycles = 17;
    result.averages = {0.25, -1.0, 0.5};
    result.bitAverages = {1.0, 0.0, 0.5};
    result.sampleCount = 4242;
    result.error = "";

    Writer w;
    encodeJobResult(w, result);
    Reader r(w.bytes());
    JobResult back = decodeJobResult(r);
    EXPECT_NO_THROW(r.expectEnd());
    EXPECT_EQ(back, result);

    JobResult failure;
    failure.error = "it broke";
    Writer wf;
    encodeJobResult(wf, failure);
    Reader rf(wf.bytes());
    EXPECT_EQ(decodeJobResult(rf), failure);
}

TEST(Wire, StatsFrameRoundTrip)
{
    StatsFrame stats;
    stats.scheduler.submitted = 10;
    stats.scheduler.completed = 8;
    stats.scheduler.failed = 1;
    stats.scheduler.cancelled = 1;
    stats.scheduler.shardedJobs = 2;
    stats.scheduler.machineSaturation = 0.75;
    stats.scheduler.poolWaitEwmaSeconds = 0.003;
    stats.scheduler.latency[1] = {5, 0.01, 0.02, 0.05};
    stats.scheduler.latency[2] = {2, 0.001, 0.002, 0.004};
    stats.pool.machinesCreated = 3;
    stats.pool.reuseHits = 7;
    stats.pool.machineResets = 9;
    stats.cache.programHits = 11;
    stats.cache.programMisses = 4;
    stats.cache.programEvictions = 1;
    stats.cache.lutHits = 22;
    stats.cache.lutMisses = 6;
    stats.cache.lutEvictions = 2;
    stats.effectiveQueueCapacity = 16;

    Writer w;
    encodeStatsFrame(w, stats);
    Reader r(w.bytes());
    StatsFrame back = decodeStatsFrame(r);
    EXPECT_NO_THROW(r.expectEnd());
    EXPECT_EQ(back.scheduler.submitted, 10u);
    EXPECT_EQ(back.scheduler.cancelled, 1u);
    EXPECT_EQ(back.scheduler.machineSaturation, 0.75);
    EXPECT_EQ(back.scheduler.poolWaitEwmaSeconds, 0.003);
    EXPECT_EQ(back.scheduler.latency[1].count, 5u);
    EXPECT_EQ(back.scheduler.latency[1].p95, 0.02);
    EXPECT_EQ(back.scheduler.latency[2].max, 0.004);
    EXPECT_EQ(back.pool.machinesCreated, 3u);
    EXPECT_EQ(back.pool.reuseHits, 7u);
    EXPECT_EQ(back.pool.machineResets, 9u);
    EXPECT_EQ(back.cache.programHits, 11u);
    EXPECT_EQ(back.cache.programMisses, 4u);
    EXPECT_EQ(back.cache.programEvictions, 1u);
    EXPECT_EQ(back.cache.lutHits, 22u);
    EXPECT_EQ(back.cache.lutMisses, 6u);
    EXPECT_EQ(back.cache.lutEvictions, 2u);
    EXPECT_EQ(back.effectiveQueueCapacity, 16u);
}

TEST(Wire, ErrorFrameRoundTrip)
{
    ErrorFrame e{WireErrorCode::UnknownJob, "job 7 is unknown"};
    Writer w;
    encodeErrorFrame(w, e);
    Reader r(w.bytes());
    ErrorFrame back = decodeErrorFrame(r);
    EXPECT_EQ(back.code, WireErrorCode::UnknownJob);
    EXPECT_EQ(back.message, "job 7 is unknown");

    Writer bad;
    bad.u16(999);
    bad.str("?");
    Reader rb(bad.bytes());
    EXPECT_THROW(decodeErrorFrame(rb), WireError);
}

// --- loopback transport and server dispatch ---------------------------------

TEST(Loopback, PairCarriesBytesBothWays)
{
    auto [a, b] = loopbackPair();
    std::uint8_t out[3] = {1, 2, 3};
    a->sendAll(out, 3);
    std::uint8_t in[3] = {};
    ASSERT_TRUE(b->recvAll(in, 3));
    EXPECT_EQ(in[2], 3);
    b->sendAll(in, 3);
    ASSERT_TRUE(a->recvAll(in, 3));
    a->close();
    // After close, the peer sees clean EOF between frames.
    EXPECT_FALSE(b->recvAll(in, 1));
}

TEST(Loopback, SubmitAwaitPollStatusAgainstServer)
{
    ExperimentService service({.workers = 2});
    auto listener = std::make_unique<LoopbackListener>();
    LoopbackListener *accept_side = listener.get();
    QumaServer server(service, std::move(listener));
    QumaClient client(accept_side->connect());

    runtime::JobId id = client.submit(shotJob(4, 0x111));
    JobResult remote = client.await(id);
    EXPECT_FALSE(remote.failed());
    EXPECT_EQ(remote.sampleCount, 4u);
    // Once finished, status/poll agree.
    EXPECT_EQ(client.status(id), JobStatus::Done);
    std::optional<JobResult> polled = client.poll(id);
    ASSERT_TRUE(polled.has_value());
    EXPECT_EQ(*polled, remote);

    // Determinism across backends: a second, fresh local service
    // produces the bit-identical result for the same spec.
    ExperimentService local({.workers = 1});
    EXPECT_EQ(local.runSync(shotJob(4, 0x111)), remote);

    QumaServer::Stats ss = server.stats();
    EXPECT_EQ(ss.connectionsAccepted, 1u);
    EXPECT_GE(ss.requestsServed, 4u);
    EXPECT_GT(ss.link.bytesUp, 0u);
    EXPECT_GT(ss.link.bytesDown, 0u);
    core::LinkStats cs = client.linkStats();
    EXPECT_GT(cs.bytesUp, 0u);
    EXPECT_EQ(cs.uploads, ss.link.uploads);
}

TEST(Loopback, TrySubmitReportsAdmissionRejection)
{
    ServiceConfig sc;
    sc.workers = 1;
    sc.queueCapacity = 1;
    sc.startPaused = true;
    ExperimentService service(sc);
    auto listener = std::make_unique<LoopbackListener>();
    LoopbackListener *accept_side = listener.get();
    QumaServer server(service, std::move(listener));
    QumaClient client(accept_side->connect());

    std::optional<runtime::JobId> first =
        client.trySubmit(shotJob(2, 1));
    ASSERT_TRUE(first.has_value());
    std::optional<runtime::JobId> second =
        client.trySubmit(shotJob(2, 2));
    EXPECT_FALSE(second.has_value());

    service.start();
    EXPECT_FALSE(client.await(*first).failed());
}

TEST(Loopback, ExplicitCancelOfQueuedJob)
{
    ServiceConfig sc;
    sc.workers = 1;
    sc.queueCapacity = 8;
    sc.startPaused = true;
    ExperimentService service(sc);
    auto listener = std::make_unique<LoopbackListener>();
    LoopbackListener *accept_side = listener.get();
    QumaServer server(service, std::move(listener));
    QumaClient client(accept_side->connect());

    runtime::JobId keep = client.submit(shotJob(2, 1));
    runtime::JobId drop = client.submit(shotJob(2, 2));
    EXPECT_TRUE(client.cancel(drop));
    EXPECT_FALSE(client.cancel(drop)); // already finished (failed)
    EXPECT_EQ(client.status(drop), JobStatus::Failed);
    JobResult dropped = client.await(drop);
    EXPECT_TRUE(dropped.failed());
    EXPECT_NE(dropped.error.find("cancelled"), std::string::npos);

    service.start();
    EXPECT_FALSE(client.await(keep).failed());
    EXPECT_EQ(client.stats().scheduler.cancelled, 1u);
}

TEST(Loopback, CancelIsScopedToTheSubmittingConnection)
{
    ServiceConfig sc;
    sc.workers = 1;
    sc.queueCapacity = 8;
    sc.startPaused = true;
    ExperimentService service(sc);
    auto listener = std::make_unique<LoopbackListener>();
    LoopbackListener *accept_side = listener.get();
    QumaServer server(service, std::move(listener));
    QumaClient alice(accept_side->connect());
    QumaClient mallory(accept_side->connect());

    runtime::JobId job = alice.submit(shotJob(2, 1));
    // Another connection cannot cancel a job it does not own, even
    // with a valid (guessed) id.
    EXPECT_FALSE(mallory.cancel(job));
    EXPECT_EQ(alice.status(job), JobStatus::Queued);
    // The owner still can.
    EXPECT_TRUE(alice.cancel(job));
    EXPECT_EQ(alice.status(job), JobStatus::Failed);
    service.start();
    service.drain();
}

TEST(Loopback, DisconnectCancelsQueuedJobs)
{
    ServiceConfig sc;
    sc.workers = 1;
    sc.queueCapacity = 8;
    sc.startPaused = true;
    ExperimentService service(sc);
    auto listener = std::make_unique<LoopbackListener>();
    LoopbackListener *accept_side = listener.get();
    QumaServer server(service, std::move(listener));

    {
        QumaClient client(accept_side->connect());
        client.submit(shotJob(2, 1));
        client.submit(shotJob(2, 2));
        client.disconnect();
    }
    // The serving thread notices EOF asynchronously.
    for (int i = 0; i < 500; ++i) {
        if (server.stats().jobsCancelledOnDisconnect == 2)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(server.stats().jobsCancelledOnDisconnect, 2u);
    EXPECT_EQ(service.scheduler().stats().cancelled, 2u);
    // The connection's serving state was reclaimed, not parked.
    EXPECT_EQ(server.stats().connectionsActive, 0u);
    service.start();
    service.drain();
}

TEST(Loopback, UnknownJobIdMirrorsLocalFatal)
{
    ExperimentService service({.workers = 1});
    auto listener = std::make_unique<LoopbackListener>();
    LoopbackListener *accept_side = listener.get();
    QumaServer server(service, std::move(listener));
    QumaClient client(accept_side->connect());
    EXPECT_THROW(client.await(424242), FatalError);
    // The connection survives an error reply.
    EXPECT_FALSE(client.runSync(shotJob(2, 5)).failed());
}

TEST(Loopback, StatsFrameReflectsServedWork)
{
    ExperimentService service({.workers = 2});
    auto listener = std::make_unique<LoopbackListener>();
    LoopbackListener *accept_side = listener.get();
    QumaServer server(service, std::move(listener));
    QumaClient client(accept_side->connect());

    JobSpec spec = shotJob(2, 0x77);
    spec.priority = JobPriority::High;
    EXPECT_FALSE(client.runSync(spec).failed());

    StatsFrame stats = client.stats();
    EXPECT_GE(stats.scheduler.completed, 1u);
    EXPECT_GT(stats.effectiveQueueCapacity, 0u);
    const auto &high = stats.scheduler.latency[static_cast<std::size_t>(
        JobPriority::High)];
    EXPECT_EQ(high.count, 1u);
    EXPECT_GT(high.max, 0.0);
    EXPECT_GE(high.p95, high.p50);
    EXPECT_GE(stats.pool.machinesCreated, 1u);
}

TEST(Loopback, StatsFrameCarriesCacheCounters)
{
    // Wire v3: the stats frame exposes the serving side's program/LUT
    // cache, so a remote operator can judge cache health without shell
    // access to the server host.
    ExperimentService service({.workers = 2});
    auto listener = std::make_unique<LoopbackListener>();
    LoopbackListener *accept_side = listener.get();
    QumaServer server(service, std::move(listener));
    QumaClient client(accept_side->connect());

    // Same assembly twice: the second run must be a program-cache hit.
    EXPECT_FALSE(client.runSync(shotJob(2, 0x1)).failed());
    EXPECT_FALSE(client.runSync(shotJob(2, 0x2)).failed());

    StatsFrame stats = client.stats();
    EXPECT_EQ(stats.cache.programMisses, 1u);
    EXPECT_GE(stats.cache.programHits, 1u);
    EXPECT_GE(stats.cache.lutHits + stats.cache.lutMisses, 1u);
}

TEST(Loopback, DisconnectDuringAwaitCancelsQueuedJobs)
{
    // The serving thread is parked in an await on a job that can
    // never run (paused service) when the client vanishes: the
    // liveness probe inside the bounded wait must notice and the
    // disconnect handling must cancel the client's queued jobs.
    ServiceConfig sc;
    sc.workers = 1;
    sc.queueCapacity = 8;
    sc.startPaused = true;
    ExperimentService service(sc);
    auto listener = std::make_unique<LoopbackListener>();
    LoopbackListener *accept_side = listener.get();
    QumaServer server(service, std::move(listener));

    {
        QumaClient client(accept_side->connect());
        runtime::JobId first = client.submit(shotJob(2, 1));
        client.submit(shotJob(2, 2));
        std::thread waiter([&] {
            try {
                client.await(first);
            } catch (const std::exception &) {
                // The disconnect below kills the in-flight await.
            }
        });
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        client.disconnect();
        waiter.join();
    }
    for (int i = 0; i < 1000; ++i) {
        if (server.stats().jobsCancelledOnDisconnect == 2)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(server.stats().jobsCancelledOnDisconnect, 2u);
    EXPECT_EQ(service.scheduler().stats().cancelled, 2u);
    service.start();
    service.drain();
}

TEST(Loopback, StopUnblocksAPendingAwait)
{
    // The service never starts, so the awaited job can never finish:
    // stop() must still complete, interrupting the connection thread
    // parked on the scheduler and answering the client with a
    // Shutdown error.
    ServiceConfig sc;
    sc.workers = 1;
    sc.startPaused = true;
    ExperimentService service(sc);
    auto listener = std::make_unique<LoopbackListener>();
    LoopbackListener *accept_side = listener.get();
    QumaServer server(service, std::move(listener));
    QumaClient client(accept_side->connect());

    runtime::JobId id = client.submit(shotJob(2, 1));
    bool threw = false;
    std::thread waiter([&] {
        try {
            client.await(id);
        } catch (const std::exception &) {
            threw = true;
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    server.stop(); // must not hang behind the blocked await
    waiter.join();
    EXPECT_TRUE(threw);
    service.start();
    service.drain();
}

/** Read one whole frame (header + payload) off a raw stream. */
std::pair<FrameHeader, std::vector<std::uint8_t>>
recvFrame(ByteStream &stream)
{
    std::uint8_t header[kFrameHeaderBytes];
    EXPECT_TRUE(stream.recvAll(header, sizeof(header)));
    FrameHeader fh = decodeFrameHeader(header);
    std::vector<std::uint8_t> payload(fh.length);
    if (fh.length > 0) {
        EXPECT_TRUE(stream.recvAll(payload.data(), payload.size()));
    }
    return {fh, std::move(payload)};
}

TEST(Loopback, MalformedPayloadGetsBadRequestAndKeepsConnection)
{
    ServiceConfig sc;
    sc.workers = 1;
    sc.queueCapacity = 8;
    sc.startPaused = true;
    ExperimentService service(sc);
    auto listener = std::make_unique<LoopbackListener>();
    LoopbackListener *accept_side = listener.get();
    QumaServer server(service, std::move(listener));

    std::unique_ptr<ByteStream> raw = accept_side->connect();
    // A healthy submit first, so the connection owns a queued job.
    Writer submit;
    encodeJobSpec(submit, shotJob(2, 9));
    // A v4-stamped Submit must carry a trace context (zeros = "no
    // trace").
    encodeTraceContext(submit, TraceContext{});
    std::vector<std::uint8_t> frame =
        sealFrame(MsgType::SubmitRequest, 1, submit);
    raw->sendAll(frame.data(), frame.size());
    auto [sfh, sbody] = recvFrame(*raw);
    ASSERT_EQ(sfh.type, MsgType::SubmitReply);
    EXPECT_EQ(sfh.requestId, 1u);

    // Now a StatusRequest whose payload is 2 bytes short of its u64:
    // framing is intact, the payload is the client's bug.
    Writer bad;
    bad.u32(7);
    frame = sealFrame(MsgType::StatusRequest, 2, bad);
    raw->sendAll(frame.data(), frame.size());
    auto [efh, ebody] = recvFrame(*raw);
    ASSERT_EQ(efh.type, MsgType::ErrorReply);
    // The error reply routes back to the offending request.
    EXPECT_EQ(efh.requestId, 2u);
    Reader er(ebody);
    EXPECT_EQ(decodeErrorFrame(er).code, WireErrorCode::BadRequest);

    // The connection survived and the queued job was NOT cancelled.
    Writer stats;
    frame = sealFrame(MsgType::StatsRequest, 3, stats);
    raw->sendAll(frame.data(), frame.size());
    auto [tfh, tbody] = recvFrame(*raw);
    EXPECT_EQ(tfh.type, MsgType::StatsReply);
    EXPECT_EQ(tfh.requestId, 3u);
    EXPECT_EQ(service.scheduler().stats().cancelled, 0u);

    service.start();
    service.drain();
}

// --- version negotiation and header fuzzing ---------------------------------

/** A v1-era frame: 12-byte header (no requestId), then payload. */
std::vector<std::uint8_t>
sealV1Frame(MsgType type, const Writer &payload)
{
    Writer header;
    header.u32(kWireMagic);
    header.u16(1); // the legacy version
    header.u16(static_cast<std::uint16_t>(type));
    header.u32(static_cast<std::uint32_t>(payload.bytes().size()));
    std::vector<std::uint8_t> frame = header.bytes();
    frame.insert(frame.end(), payload.bytes().begin(),
                 payload.bytes().end());
    return frame;
}

TEST(Loopback, LegacyV1FrameGetsCleanVersionMismatchThenHangup)
{
    ExperimentService service({.workers = 1});
    auto listener = std::make_unique<LoopbackListener>();
    LoopbackListener *accept_side = listener.get();
    QumaServer server(service, std::move(listener));

    // A v1 StatusRequest: 12 header bytes + 8 payload bytes, so the
    // server's 20-byte header read completes and sees version 1.
    std::unique_ptr<ByteStream> raw = accept_side->connect();
    Writer payload;
    payload.u64(7);
    std::vector<std::uint8_t> frame =
        sealV1Frame(MsgType::StatusRequest, payload);
    ASSERT_EQ(frame.size(), kFrameHeaderBytes); // reads as one header
    raw->sendAll(frame.data(), frame.size());

    // The answer is a clean, DECODABLE v2 error frame on the
    // connection-level request id -- not silence, not a dropped
    // socket mid-frame.
    auto [fh, body] = recvFrame(*raw);
    EXPECT_EQ(fh.type, MsgType::ErrorReply);
    EXPECT_EQ(fh.requestId, kConnectionRequestId);
    Reader r(body);
    ErrorFrame e = decodeErrorFrame(r);
    EXPECT_EQ(e.code, WireErrorCode::VersionMismatch);
    EXPECT_NE(e.message.find("version 1"), std::string::npos);

    // ... after which the server hangs up (clean EOF).
    std::uint8_t probe;
    EXPECT_FALSE(raw->recvAll(&probe, 1));

    // The nastier case: a v1 frame SHORTER than the v2 header (a
    // 12-byte StatsRequest has no payload). The server must not
    // block waiting for v2-header bytes that will never come -- the
    // prefix check fires on the first 12 bytes alone.
    std::unique_ptr<ByteStream> short_raw = accept_side->connect();
    std::vector<std::uint8_t> tiny =
        sealV1Frame(MsgType::StatsRequest, Writer{});
    ASSERT_EQ(tiny.size(), kFrameHeaderPrefixBytes);
    short_raw->sendAll(tiny.data(), tiny.size());
    auto [tfh, tbody] = recvFrame(*short_raw);
    EXPECT_EQ(tfh.type, MsgType::ErrorReply);
    Reader tr(tbody);
    EXPECT_EQ(decodeErrorFrame(tr).code,
              WireErrorCode::VersionMismatch);
    EXPECT_FALSE(short_raw->recvAll(&probe, 1));
}

TEST(Loopback, SlowConsumerOverflowTearsTheConnectionDown)
{
    // A client that fires requests but never reads replies must not
    // grow the server's outbox without bound: once the pipe (here a
    // TCP-buffer-sized 256 bytes) wedges the writer and the outbox
    // hits its cap, the connection is treated as dead and reclaimed.
    ExperimentService service({.workers = 1});
    auto listener =
        std::make_unique<LoopbackListener>(/*pipe_capacity=*/256);
    LoopbackListener *accept_side = listener.get();
    ServerConfig cfg;
    cfg.maxQueuedReplyFrames = 4;
    QumaServer server(service, std::move(listener), cfg);

    std::unique_ptr<ByteStream> raw = accept_side->connect();
    std::vector<std::uint8_t> frame =
        sealFrame(MsgType::StatsRequest, 1, Writer{});
    // Far more requests than fit in the reply pipe plus the outbox
    // cap; never read a single reply. Sends may block on the
    // bounded pipe and then fail once the server hangs up -- which
    // is the point.
    bool hungUpOnUs = false;
    for (int i = 0; i < 64 && !hungUpOnUs; ++i) {
        try {
            raw->sendAll(frame.data(), frame.size());
        } catch (const WireError &) {
            hungUpOnUs = true;
        }
    }
    for (int i = 0; i < 1000; ++i) {
        if (server.stats().connectionsActive == 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(server.stats().connectionsActive, 0u);

    // The server remains healthy for well-behaved clients.
    QumaClient client(accept_side->connect());
    EXPECT_FALSE(client.runSync(shotJob(2, 0x51)).failed());
}

TEST(Loopback, TruncatedHeadersNeverWedgeTheServer)
{
    ExperimentService service({.workers = 1});
    auto listener = std::make_unique<LoopbackListener>();
    LoopbackListener *accept_side = listener.get();
    QumaServer server(service, std::move(listener));

    Writer payload;
    payload.u64(424242);
    std::vector<std::uint8_t> whole =
        sealFrame(MsgType::AwaitRequest, 9, payload);

    // Every proper prefix of the 20-byte header (plus a mid-payload
    // cut): the server must treat each as a dead/misbehaving peer
    // and reclaim the connection -- no hang, no crash, no UB for
    // any cut point across the new header fields (requestId
    // included).
    for (std::size_t cut = 1; cut < whole.size(); ++cut) {
        std::unique_ptr<ByteStream> raw = accept_side->connect();
        raw->sendAll(whole.data(), cut);
        raw->close();
    }
    // Connections are torn down asynchronously; wait for the server
    // to reclaim all of them.
    for (int i = 0; i < 1000; ++i) {
        if (server.stats().connectionsActive == 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(server.stats().connectionsActive, 0u);

    // And the server still serves fresh, well-formed connections.
    QumaClient client(accept_side->connect());
    EXPECT_FALSE(client.runSync(shotJob(2, 0xf42)).failed());
}

// --- pipelining and server-push streaming ------------------------------------

TEST(Loopback, ManyAwaitsInFlightOnOneConnection)
{
    // Three awaits park on ONE connection while the service is still
    // paused -- impossible under the v1 strict request/reply
    // discipline, where the first await would own the connection
    // until its job completed.
    ServiceConfig sc;
    sc.workers = 1;
    sc.queueCapacity = 8;
    sc.startPaused = true;
    ExperimentService service(sc);
    auto listener = std::make_unique<LoopbackListener>();
    LoopbackListener *accept_side = listener.get();
    QumaServer server(service, std::move(listener));
    QumaClient client(accept_side->connect());

    std::vector<runtime::JobId> ids = client.submitAll(
        {shotJob(2, 0xa), shotJob(2, 0xb), shotJob(2, 0xc)});
    ASSERT_EQ(ids.size(), 3u);

    std::vector<std::pair<runtime::JobId, JobResult>> streamed;
    std::thread waiter([&] { streamed = client.awaitMany(ids); });
    // Give the awaits time to reach the server; they must all be
    // REGISTERED (requests served), not queued behind each other.
    for (int i = 0; i < 1000; ++i) {
        if (server.stats().requestsServed >= 6)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_GE(server.stats().requestsServed, 6u);

    service.start();
    waiter.join();
    ASSERT_EQ(streamed.size(), 3u);
    // Exactly one request frame per submit and per await crossed the
    // wire: results were PUSHED on completion, never polled for.
    EXPECT_EQ(server.stats().requestsServed, 6u);

    // Results route to the right ids and match a local reference.
    ExperimentService local({.workers = 1});
    std::map<runtime::JobId, JobResult> bySubmitted;
    for (auto &[id, result] : streamed)
        bySubmitted.emplace(id, result);
    std::vector<std::uint64_t> seeds = {0xa, 0xb, 0xc};
    for (std::size_t i = 0; i < ids.size(); ++i)
        EXPECT_EQ(bySubmitted.at(ids[i]),
                  local.runSync(shotJob(2, seeds[i])));
}

TEST(Loopback, AwaitStreamingDeliversInCompletionOrder)
{
    // One worker, paused: the jobs will finish in queue order, and
    // the streamed delivery order must match the scheduler's own
    // completion record -- results arrive as they finish, not in
    // request order.
    ServiceConfig sc;
    sc.workers = 1;
    sc.queueCapacity = 8;
    sc.startPaused = true;
    ExperimentService service(sc);
    auto listener = std::make_unique<LoopbackListener>();
    LoopbackListener *accept_side = listener.get();
    QumaServer server(service, std::move(listener));
    QumaClient client(accept_side->connect());

    std::vector<runtime::JobId> ids = client.submitAll(
        {shotJob(2, 1), shotJob(2, 2), shotJob(2, 3),
         shotJob(2, 4)});
    // Await in REVERSE argument order to decouple request order from
    // completion order.
    std::vector<runtime::JobId> reversed(ids.rbegin(), ids.rend());
    std::vector<runtime::JobId> delivered;
    std::thread waiter([&] {
        client.awaitStreaming(
            reversed, [&delivered](runtime::JobId id,
                                   JobResult result) {
                EXPECT_FALSE(result.failed());
                delivered.push_back(id);
            });
    });
    // All four awaits must be REGISTERED (4 submits + 4 awaits
    // served) before the first job may run, or an early finisher
    // would be delivered in subscription order instead.
    for (int i = 0; i < 1000; ++i) {
        if (server.stats().requestsServed >= 8)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_GE(server.stats().requestsServed, 8u);
    service.start();
    waiter.join();
    ASSERT_EQ(delivered.size(), ids.size());
    EXPECT_EQ(delivered, service.scheduler().finishedIds());
}

// --- real TCP: the remote-vs-local acceptance invariant ---------------------

TEST(Tcp, ShardedPriorityAllxyBitIdenticalRemoteVsLocal)
{
    experiments::AllxyConfig cfg;
    cfg.rounds = 32;
    cfg.shards = 4;
    cfg.seed = 0xa11c;
    JobSpec spec = experiments::allxyJob(cfg);
    ASSERT_EQ(spec.rounds, 32u); // round-structured, sharded
    spec.priority = JobPriority::High;

    // In-process reference.
    ExperimentService local({.workers = 2});
    JobResult localResult = local.runSync(spec);
    ASSERT_FALSE(localResult.failed());

    // The same spec through a real TCP loopback connection.
    ExperimentService served({.workers = 2});
    auto listener = std::make_unique<TcpListener>(0);
    std::uint16_t port = listener->port();
    QumaServer server(served, std::move(listener));
    QumaClient client("127.0.0.1", port);
    JobResult remoteResult = client.runSync(spec);

    ASSERT_FALSE(remoteResult.failed());
    EXPECT_GT(remoteResult.sampleCount, 0u);
    // THE acceptance bit: not close, identical.
    EXPECT_EQ(remoteResult, localResult);

    // The sharding fields made it across: the served scheduler saw a
    // multi-shard job.
    EXPECT_GE(served.scheduler().stats().shardedJobs, 1u);
}

TEST(Tcp, ExperimentFanOutRunsUnchangedAgainstRemoteBackend)
{
    experiments::AllxyConfig cfg;
    cfg.rounds = 8;
    cfg.shards = 1;
    cfg.seed = 0x5eed;

    ExperimentService local({.workers = 2});
    experiments::AllxyResult onLocal =
        experiments::runAllxy(cfg, local);

    ExperimentService served({.workers = 2});
    auto listener = std::make_unique<TcpListener>(0);
    std::uint16_t port = listener->port();
    QumaServer server(served, std::move(listener));
    QumaClient client("127.0.0.1", port);
    experiments::AllxyResult onRemote =
        experiments::runAllxy(cfg, client);

    // Same fan-out code, different backend, identical physics.
    EXPECT_EQ(onRemote.rawS, onLocal.rawS);
    EXPECT_EQ(onRemote.fidelity, onLocal.fidelity);
    EXPECT_EQ(onRemote.deviation, onLocal.deviation);
}

TEST(Tcp, ConcurrentClientsGetTheirOwnResults)
{
    ExperimentService service({.workers = 2});
    auto listener = std::make_unique<TcpListener>(0);
    std::uint16_t port = listener->port();
    QumaServer server(service, std::move(listener));

    constexpr int kClients = 3;
    constexpr int kJobsEach = 3;
    std::vector<std::vector<JobResult>> results(kClients);
    std::vector<std::thread> drivers;
    drivers.reserve(kClients);
    for (int c = 0; c < kClients; ++c)
        drivers.emplace_back([&, c] {
            QumaClient client("127.0.0.1", port);
            std::vector<runtime::JobId> ids;
            for (int j = 0; j < kJobsEach; ++j)
                ids.push_back(client.submit(
                    shotJob(2, 0x1000u + 16u * static_cast<unsigned>(c) +
                                   static_cast<unsigned>(j))));
            results[static_cast<std::size_t>(c)] =
                client.awaitAll(ids);
        });
    for (auto &d : drivers)
        d.join();

    // Every client's results match a locally-run reference of the
    // same seeds: no cross-connection mixups.
    ExperimentService local({.workers = 1});
    for (int c = 0; c < kClients; ++c)
        for (int j = 0; j < kJobsEach; ++j) {
            JobResult ref = local.runSync(
                shotJob(2, 0x1000u + 16u * static_cast<unsigned>(c) +
                               static_cast<unsigned>(j)));
            EXPECT_EQ(results[static_cast<std::size_t>(c)]
                             [static_cast<std::size_t>(j)],
                      ref);
        }
    EXPECT_EQ(server.stats().connectionsAccepted,
              static_cast<std::size_t>(kClients));
}

TEST(Tcp, PipelinedShardedSweepBitIdenticalRemoteVsLocal)
{
    // THE v2 acceptance invariant: a whole sweep of sharded,
    // priority-tagged jobs pipelined over ONE TCP connection, with
    // results streamed back by server push, merges bit-identically
    // to the in-process path.
    std::vector<JobSpec> sweep;
    for (std::uint64_t i = 0; i < 4; ++i) {
        experiments::AllxyConfig cfg;
        cfg.rounds = 24;
        cfg.shards = 2;
        cfg.seed = 0x90e0 + i;
        JobSpec spec = experiments::allxyJob(cfg);
        ASSERT_EQ(spec.rounds, 24u); // round-structured, sharded
        spec.priority = JobPriority::High;
        sweep.push_back(std::move(spec));
    }

    // In-process reference.
    ExperimentService local({.workers = 2});
    std::vector<JobResult> localResults =
        local.awaitAll(local.submitAll(sweep));

    // The same sweep through one TCP loopback connection.
    ExperimentService served({.workers = 2});
    auto listener = std::make_unique<TcpListener>(0);
    std::uint16_t port = listener->port();
    QumaServer server(served, std::move(listener));
    QumaClient client("127.0.0.1", port);

    std::vector<runtime::JobId> ids = client.submitAll(sweep);
    std::map<runtime::JobId, JobResult> byId;
    for (auto &[id, result] : client.awaitMany(ids))
        byId.emplace(id, std::move(result));

    ASSERT_EQ(byId.size(), sweep.size());
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        ASSERT_FALSE(localResults[i].failed());
        // THE acceptance bit: not close, identical.
        EXPECT_EQ(byId.at(ids[i]), localResults[i]);
    }

    // The sharding fields made it across (multi-shard jobs on the
    // serving scheduler) and delivery was pure push: exactly one
    // frame per submit and per await, no polling traffic.
    EXPECT_GE(served.scheduler().stats().shardedJobs, sweep.size());
    EXPECT_EQ(server.stats().requestsServed, 2 * sweep.size());
}

TEST(Tcp, CoherenceSweepFanOutPipelinedMatchesLocal)
{
    // The rewired experiment fan-out end to end: runT1 against a
    // remote backend submits its whole sweep with submitAll (one
    // pipelined burst over the single connection) and must still
    // reproduce the local service's numbers exactly.
    experiments::CoherenceConfig cfg =
        experiments::CoherenceConfig::withLinearSweep(4000.0, 4);
    cfg.rounds = 16;
    cfg.shards = 2;
    cfg.seed = 0x71a;

    ExperimentService local({.workers = 2});
    experiments::DecayResult onLocal = experiments::runT1(cfg, local);

    ExperimentService served({.workers = 2});
    auto listener = std::make_unique<TcpListener>(0);
    std::uint16_t port = listener->port();
    QumaServer server(served, std::move(listener));
    QumaClient client("127.0.0.1", port);
    experiments::DecayResult onRemote =
        experiments::runT1(cfg, client);

    EXPECT_EQ(onRemote.delaysNs, onLocal.delaysNs);
    EXPECT_EQ(onRemote.population, onLocal.population);
    EXPECT_EQ(onRemote.fit.tau, onLocal.fit.tau);
}

// --- wire v4 observability: tracing, progress, back-compat ------------------

TEST(Wire, ObservabilityPayloadsRoundTrip)
{
    Writer w;
    encodeTraceContext(w, TraceContext{0xabcdef0123456789ull, 42});
    Reader r(w.bytes());
    TraceContext tc = decodeTraceContext(r);
    EXPECT_EQ(tc.traceId, 0xabcdef0123456789ull);
    EXPECT_EQ(tc.spanId, 42u);

    Writer pw;
    encodeProgressFrame(pw, ProgressFrameData{7, 96, 128});
    Reader pr(pw.bytes());
    ProgressFrameData p = decodeProgressFrame(pr);
    EXPECT_EQ(p.job, 7u);
    EXPECT_EQ(p.roundsDone, 96u);
    EXPECT_EQ(p.roundsTotal, 128u);

    // done > total is not a progress report, it is a bug on the
    // wire.
    Writer bad;
    encodeProgressFrame(bad, ProgressFrameData{7, 129, 128});
    Reader br(bad.bytes());
    EXPECT_THROW(decodeProgressFrame(br), WireError);

    Writer cw;
    encodeClockSyncFrame(cw, ClockSyncFrame{123456789});
    Reader cr(cw.bytes());
    EXPECT_EQ(decodeClockSyncFrame(cr).serverNanos, 123456789u);

    TraceDumpFrame dump;
    dump.events.push_back({3, 1, runtime::TracePhase::ShardStart, 50});
    dump.events.push_back({3, 1, runtime::TracePhase::ShardFinish, 90});
    dump.traceIds.emplace_back(3, 0x5eed);
    dump.dropped = 2;
    Writer dw;
    encodeTraceDumpFrame(dw, dump);
    Reader dr(dw.bytes());
    TraceDumpFrame out = decodeTraceDumpFrame(dr);
    ASSERT_EQ(out.events.size(), 2u);
    EXPECT_EQ(out.events[0].job, 3u);
    EXPECT_EQ(out.events[1].phase, runtime::TracePhase::ShardFinish);
    EXPECT_EQ(out.events[1].nanos, 90u);
    ASSERT_EQ(out.traceIds.size(), 1u);
    EXPECT_EQ(out.traceIds[0].second, 0x5eedu);
    EXPECT_EQ(out.dropped, 2u);
}

TEST(Loopback, SubmitCarriesTraceContextToServerRecorder)
{
    // The distributed-trace join point: a v4 submit carries the
    // client's traceId, and the server's recorder files the job
    // under it -- that association is what the merged trace joins
    // on.
    ExperimentService service({.workers = 1});
    service.trace().enable();
    auto listener = std::make_unique<LoopbackListener>();
    LoopbackListener *accept_side = listener.get();
    QumaServer server(service, std::move(listener));
    QumaClient client(accept_side->connect());

    ASSERT_NE(client.traceId(), 0u);
    runtime::JobId id = client.submit(shotJob(2, 1));
    EXPECT_EQ(service.trace().traceIdOf(id), client.traceId());
    client.await(id);

    // The clock-sync handshake completes (the offset magnitude is
    // environment-dependent, the round trip must simply succeed).
    (void)client.clockSync();
}

TEST(Loopback, ProgressStreamsMonotonicallyBitIdenticalEverywhere)
{
    // THE progress acceptance sweep: the same sharded AllXY job at
    // every shards x workers x stealing combination must (a) stream
    // monotonic progress ending exactly at done == total ahead of
    // the result, and (b) produce the bit-identical JobResult the
    // quiet in-process run produces -- observability must never
    // perturb the physics.
    experiments::AllxyConfig cfg;
    cfg.rounds = 32;
    cfg.seed = 0xa11c;

    // One quiet in-process reference PER spec: a sharded job runs
    // round-by-round with per-round RNG streams, a 1-shard job as a
    // single machine run, so the bit-identity contract is per spec
    // (any workers x stealing x progress), not across shard counts.
    std::map<std::uint32_t, JobResult> localByShards;
    for (std::uint32_t shards : {1u, 4u}) {
        cfg.shards = shards;
        localByShards[shards] = ExperimentService({.workers = 2})
                                    .runSync(experiments::allxyJob(cfg));
        ASSERT_FALSE(localByShards[shards].failed());
    }

    for (bool steal : {false, true}) {
        for (unsigned workers : {1u, 4u}) {
            for (std::uint32_t shards : {1u, 4u}) {
                ServiceConfig sc;
                sc.workers = workers;
                sc.workSteal = steal;
                sc.progressInterval = std::chrono::milliseconds(0);
                ExperimentService service(sc);
                auto listener =
                    std::make_unique<LoopbackListener>();
                LoopbackListener *accept_side = listener.get();
                QumaServer server(service, std::move(listener));
                QumaClient client(accept_side->connect());

                cfg.shards = shards;
                JobSpec spec = experiments::allxyJob(cfg);
                std::vector<runtime::JobId> ids =
                    client.submitAll({spec});
                std::mutex mu;
                std::vector<std::pair<std::uint64_t, std::uint64_t>>
                    seen;
                auto streamed = client.awaitMany(
                    ids, [&](runtime::JobId job, std::uint64_t done,
                             std::uint64_t total) {
                        std::lock_guard<std::mutex> lock(mu);
                        EXPECT_EQ(job, ids[0]);
                        seen.emplace_back(done, total);
                    });

                // awaitMany returned, so every queued progress
                // notification was delivered first (FIFO notifier).
                std::lock_guard<std::mutex> lock(mu);
                ASSERT_FALSE(seen.empty())
                    << "no progress at shards=" << shards
                    << " workers=" << workers << " steal=" << steal;
                std::uint64_t prev = 0;
                for (auto &[done, total] : seen) {
                    EXPECT_EQ(total, spec.rounds);
                    EXPECT_GE(done, prev) << "progress went backwards";
                    EXPECT_LE(done, total);
                    prev = done;
                }
                EXPECT_EQ(seen.back().first, spec.rounds)
                    << "final frame must report done == total";

                ASSERT_EQ(streamed.size(), 1u);
                EXPECT_EQ(streamed[0].second, localByShards[shards])
                    << "progress streaming perturbed the result at "
                    << "shards=" << shards << " workers=" << workers
                    << " steal=" << steal;
            }
        }
    }
}

TEST(Loopback, DisconnectMidSweepLeavesOtherConnectionsStreaming)
{
    // Two clients await progress-streaming jobs on one server; one
    // vanishes mid-sweep. Its queued progress pushes must evaporate
    // (weak ConnState, closed outbox) while the surviving
    // connection keeps streaming progress and results undisturbed.
    ServiceConfig sc;
    sc.workers = 2;
    sc.startPaused = true;
    sc.progressInterval = std::chrono::milliseconds(0);
    ExperimentService service(sc);
    auto listener = std::make_unique<LoopbackListener>();
    LoopbackListener *accept_side = listener.get();
    QumaServer server(service, std::move(listener));

    experiments::AllxyConfig cfg;
    cfg.rounds = 24;
    cfg.shards = 2;
    cfg.seed = 0xd15c;

    auto doomed = std::make_unique<QumaClient>(accept_side->connect());
    QumaClient survivor(accept_side->connect());

    std::vector<runtime::JobId> doomedIds =
        doomed->submitAll({experiments::allxyJob(cfg)});
    cfg.seed = 0xa11e;
    std::vector<runtime::JobId> aliveIds =
        survivor.submitAll({experiments::allxyJob(cfg)});

    // Both awaits (and their progress subscriptions) must be
    // registered while the service is still paused.
    std::thread doomedWaiter([&] {
        try {
            doomed->awaitMany(doomedIds,
                              [](runtime::JobId, std::uint64_t,
                                 std::uint64_t) {});
        } catch (const std::exception &) {
            // Killed by the disconnect below.
        }
    });
    std::mutex mu;
    std::size_t aliveProgress = 0;
    std::vector<std::pair<runtime::JobId, JobResult>> aliveResults;
    std::thread aliveWaiter([&] {
        aliveResults = survivor.awaitMany(
            aliveIds, [&](runtime::JobId, std::uint64_t,
                          std::uint64_t) {
                std::lock_guard<std::mutex> lock(mu);
                ++aliveProgress;
            });
    });
    for (int i = 0; i < 1000; ++i) {
        if (server.stats().requestsServed >= 4)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_GE(server.stats().requestsServed, 4u);

    // The doomed connection dies BEFORE any of its jobs ran: its
    // progress subscriptions now target a dead outbox.
    doomed->disconnect();
    doomedWaiter.join();
    doomed.reset();

    service.start();
    aliveWaiter.join();

    ASSERT_EQ(aliveResults.size(), 1u);
    EXPECT_FALSE(aliveResults[0].second.failed());
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_GE(aliveProgress, 1u)
        << "survivor stopped receiving progress";
}

/** Read one frame tolerant of any compatible version stamp. */
std::tuple<std::uint16_t, FrameHeader, std::vector<std::uint8_t>>
recvFrameCompat(ByteStream &stream)
{
    std::uint8_t header[kFrameHeaderBytes];
    EXPECT_TRUE(stream.recvAll(header, sizeof(header)));
    std::uint16_t version = checkFramePrefixCompat(header);
    FrameHeader fh = decodeFrameHeaderUnchecked(header);
    std::vector<std::uint8_t> payload(fh.length);
    if (fh.length > 0) {
        EXPECT_TRUE(stream.recvAll(payload.data(), payload.size()));
    }
    return {version, fh, std::move(payload)};
}

TEST(Loopback, V3ClientIsServedWithoutProgressFrames)
{
    // The backward-compat pin: a v3 peer submits WITHOUT a trace
    // context and awaits WITHOUT progress pushes; every reply it
    // gets back is sealed at v3 (its strict header check rejects a
    // v4 stamp), and the awaited result is the job's result frame,
    // never a ProgressFrame it cannot decode.
    ServiceConfig sc;
    sc.workers = 1;
    sc.progressInterval = std::chrono::milliseconds(0);
    ExperimentService service(sc);
    auto listener = std::make_unique<LoopbackListener>();
    LoopbackListener *accept_side = listener.get();
    QumaServer server(service, std::move(listener));

    std::unique_ptr<ByteStream> raw = accept_side->connect();
    // A v3 submit: JobSpec only, no appended trace context.
    Writer submit;
    encodeJobSpec(submit, shotJob(4, 0x33));
    std::vector<std::uint8_t> frame =
        sealFrame(MsgType::SubmitRequest, 1, submit, 3);
    raw->sendAll(frame.data(), frame.size());
    auto [sver, sfh, sbody] = recvFrameCompat(*raw);
    EXPECT_EQ(sver, 3u) << "reply to a v3 peer must be v3-stamped";
    ASSERT_EQ(sfh.type, MsgType::SubmitReply);
    Reader sr(sbody);
    runtime::JobId id = sr.u64();
    sr.expectEnd();

    Writer await;
    await.u64(id);
    frame = sealFrame(MsgType::AwaitRequest, 2, await, 3);
    raw->sendAll(frame.data(), frame.size());
    auto [aver, afh, abody] = recvFrameCompat(*raw);
    EXPECT_EQ(aver, 3u);
    // The FIRST push after a v3 await is the result, not progress:
    // the server must not subscribe progress for a v3 peer even
    // with the rate limit at zero.
    ASSERT_EQ(afh.type, MsgType::AwaitReply);
    EXPECT_EQ(afh.requestId, 2u);
    Reader ar(abody);
    JobResult result = decodeJobResult(ar);
    EXPECT_FALSE(result.failed());

    // And no trace association was recorded for the v3 job.
    EXPECT_EQ(service.trace().traceIdOf(id), 0u);
    EXPECT_EQ(server.stats().progressFramesPushed, 0u);
}

} // namespace
} // namespace quma::net
