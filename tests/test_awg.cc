/**
 * @file
 * Unit tests for the AWG board models: wave memory, the
 * codeword-triggered pulse generation unit's fixed delay, the u-op
 * unit's sequence scheduling, and pulse calibration.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "awg/awgmodule.hh"
#include "awg/calibration.hh"
#include "common/logging.hh"
#include "isa/nametable.hh"
#include "qsim/transmon.hh"

namespace quma::awg {
namespace {

namespace u = isa::uops;
constexpr double kPi = std::numbers::pi;

StoredPulse
squarePulse(const std::string &name, std::size_t samples, double amp)
{
    StoredPulse p;
    p.name = name;
    p.i.assign(samples, amp);
    p.q.assign(samples, 0.0);
    return p;
}

// ------------------------------------------------------------ wavememory

TEST(WaveMemory, UploadLookupRoundTrip)
{
    WaveMemory wm;
    wm.upload(3, squarePulse("test", 20, 0.5));
    ASSERT_TRUE(wm.contains(3));
    EXPECT_EQ(wm.lookup(3).name, "test");
    EXPECT_FALSE(wm.contains(4));
    EXPECT_EQ(wm.entryCount(), 1u);
}

TEST(WaveMemory, ReplaceOverwrites)
{
    WaveMemory wm;
    wm.upload(1, squarePulse("a", 10, 0.1));
    wm.upload(1, squarePulse("b", 10, 0.2));
    EXPECT_EQ(wm.lookup(1).name, "b");
    EXPECT_EQ(wm.entryCount(), 1u);
}

TEST(WaveMemory, MemoryAccountingUsesBits)
{
    WaveMemory wm;
    wm.upload(0, squarePulse("p", 20, 1.0)); // 40 samples I+Q
    EXPECT_EQ(wm.memoryBytes(12), 60u);
    EXPECT_EQ(wm.memoryBytes(8), 40u);
    EXPECT_EQ(wm.memoryBytes(16), 80u);
}

TEST(WaveMemory, RejectsMismatchedIq)
{
    setLogQuiet(true);
    WaveMemory wm;
    StoredPulse bad;
    bad.i.assign(10, 0.0);
    bad.q.assign(9, 0.0);
    EXPECT_THROW(wm.upload(0, std::move(bad)), quma::FatalError);
    EXPECT_THROW(wm.lookup(0), quma::FatalError);
    setLogQuiet(false);
}

TEST(WaveMemory, CodewordsSorted)
{
    WaveMemory wm;
    wm.upload(5, squarePulse("c", 4, 1));
    wm.upload(1, squarePulse("a", 4, 1));
    wm.upload(3, squarePulse("b", 4, 1));
    auto cws = wm.codewords();
    ASSERT_EQ(cws.size(), 3u);
    EXPECT_EQ(cws[0], 1);
    EXPECT_EQ(cws[1], 3);
    EXPECT_EQ(cws[2], 5);
}

// ------------------------------------------------------------------ CTPG

TEST(Ctpg, FixedDelayFromTriggerToPulse)
{
    CtpgConfig cfg;
    cfg.delayCycles = 16;
    Ctpg ctpg(cfg);
    ctpg.waveMemory().upload(1, squarePulse("x", 20, 1.0));

    std::vector<signal::DrivePulse> pulses;
    ctpg.setPulseSink([&](const signal::DrivePulse &p, Codeword,
                          QubitMask) { pulses.push_back(p); });

    ctpg.trigger(1, 100, 0x1);
    ASSERT_TRUE(ctpg.nextEventCycle().has_value());
    EXPECT_EQ(*ctpg.nextEventCycle(), 116u);
    ctpg.advanceTo(115);
    EXPECT_TRUE(pulses.empty());
    ctpg.advanceTo(116);
    ASSERT_EQ(pulses.size(), 1u);
    // 116 cycles * 5 ns = 580 ns: the paper's 80 ns after trigger.
    EXPECT_EQ(pulses[0].t0Ns, 580);
    EXPECT_EQ(ctpg.pulsesEmitted(), 1u);
}

TEST(Ctpg, PulsesKeepTriggerOrder)
{
    Ctpg ctpg;
    ctpg.waveMemory().upload(1, squarePulse("a", 4, 1.0));
    ctpg.waveMemory().upload(2, squarePulse("b", 4, 1.0));
    std::vector<Codeword> order;
    ctpg.setPulseSink([&](const signal::DrivePulse &, Codeword cw,
                          QubitMask) { order.push_back(cw); });
    ctpg.trigger(1, 10, 0x1);
    ctpg.trigger(2, 10, 0x1); // same cycle: FIFO tie-break
    ctpg.trigger(1, 14, 0x1);
    ctpg.advanceTo(1000);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 1);
}

TEST(Ctpg, UnknownCodewordIsFatal)
{
    setLogQuiet(true);
    Ctpg ctpg;
    EXPECT_THROW(ctpg.trigger(9, 0, 0x1), quma::FatalError);
    setLogQuiet(false);
}

TEST(Ctpg, DacQuantisesStoredSamples)
{
    CtpgConfig cfg;
    cfg.dacBits = 4; // coarse on purpose
    Ctpg ctpg(cfg);
    ctpg.waveMemory().upload(1, squarePulse("x", 8, 0.333));
    double seen = -1;
    ctpg.setPulseSink([&](const signal::DrivePulse &p, Codeword,
                          QubitMask) { seen = p.i[0]; });
    ctpg.trigger(1, 0, 0x1);
    ctpg.advanceTo(100);
    // 4-bit quantisation: value snapped to the nearest of 7 levels.
    EXPECT_NE(seen, 0.333);
    EXPECT_NEAR(seen, 0.333, 1.0 / 7.0);
}

// --------------------------------------------------------------- UopUnit

TEST(UopUnit, PassThroughAddsUnitDelay)
{
    UopUnit unit(microcode::UopSequenceTable::standard(), 2);
    std::vector<std::pair<Codeword, Cycle>> triggers;
    unit.setTriggerSink([&](Codeword cw, Cycle td, QubitMask) {
        triggers.emplace_back(cw, td);
    });
    unit.fire(u::X180, 40000, 0x1);
    unit.advanceTo(50000);
    ASSERT_EQ(triggers.size(), 1u);
    EXPECT_EQ(triggers[0].first, u::X180);
    EXPECT_EQ(triggers[0].second, 40002u);
}

TEST(UopUnit, SeqZEmitsTwoCodewordsFourCyclesApart)
{
    UopUnit unit(microcode::UopSequenceTable::standard(), 2);
    std::vector<std::pair<Codeword, Cycle>> triggers;
    unit.setTriggerSink([&](Codeword cw, Cycle td, QubitMask) {
        triggers.emplace_back(cw, td);
    });
    unit.fire(u::Z180, 1000, 0x1);
    unit.advanceTo(2000);
    ASSERT_EQ(triggers.size(), 2u);
    EXPECT_EQ(triggers[0].first, 1); // X180 codeword
    EXPECT_EQ(triggers[1].first, 4); // Y180 codeword
    EXPECT_EQ(triggers[1].second - triggers[0].second, 4u);
}

TEST(UopUnit, InterleavedFiresStayOrdered)
{
    UopUnit unit(microcode::UopSequenceTable::standard(), 0);
    std::vector<Cycle> times;
    unit.setTriggerSink(
        [&](Codeword, Cycle td, QubitMask) { times.push_back(td); });
    unit.fire(u::Z90, 100, 0x1); // triggers at 100, 104, 108
    unit.fire(u::X180, 102, 0x1); // trigger at 102
    unit.advanceTo(1000);
    ASSERT_EQ(times.size(), 4u);
    EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
    EXPECT_EQ(unit.triggersEmitted(), 4u);
}

// ------------------------------------------------------------- AwgModule

TEST(AwgModule, EndToEndUopToPulse)
{
    AwgConfig cfg;
    cfg.servedQubits = 0x1;
    cfg.uopDelayCycles = 2;
    cfg.ctpg.delayCycles = 16;
    AwgModule awg(cfg, microcode::UopSequenceTable::standard());
    awg::CalibrationParams cal;
    cal.rabiRadPerAmpNs = qsim::standardRabiGain();
    buildStandardLut(awg.waveMemory(), cal);

    std::vector<signal::DrivePulse> pulses;
    awg.setPulseSink([&](const signal::DrivePulse &p, Codeword,
                         QubitMask) { pulses.push_back(p); });
    awg.fireUop(u::X90, 40000, 0x1);
    awg.advanceTo(40018);
    ASSERT_EQ(pulses.size(), 1u);
    // uop delay (2) + CTPG delay (16) cycles after the label fire.
    EXPECT_EQ(pulses[0].t0Ns, cyclesToNs(40018));
}

TEST(AwgModule, TriggerObserverSeesCodewords)
{
    AwgConfig cfg;
    AwgModule awg(cfg, microcode::UopSequenceTable::standard());
    awg::CalibrationParams cal;
    cal.rabiRadPerAmpNs = qsim::standardRabiGain();
    buildStandardLut(awg.waveMemory(), cal);
    std::vector<Codeword> seen;
    awg.setTriggerObserver(
        [&](Codeword cw, Cycle, QubitMask) { seen.push_back(cw); });
    awg.fireUop(u::H, 0, 0x1);
    awg.advanceTo(100);
    ASSERT_EQ(seen.size(), 2u); // H = Y90 then X180
    EXPECT_EQ(seen[0], u::Y90);
    EXPECT_EQ(seen[1], u::X180);
}

// ------------------------------------------------------------ calibration

TEST(Calibration, AmplitudesScaleWithAngle)
{
    CalibrationParams cal;
    cal.rabiRadPerAmpNs = qsim::standardRabiGain();
    double a180 = calibratedAmplitude(cal, kPi);
    double a90 = calibratedAmplitude(cal, kPi / 2);
    EXPECT_NEAR(a180 / a90, 2.0, 1e-9);
    EXPECT_LT(calibratedAmplitude(cal, -kPi / 2), 0.0);
}

TEST(Calibration, AmplitudeErrorScalesEveryPulse)
{
    CalibrationParams cal;
    cal.rabiRadPerAmpNs = qsim::standardRabiGain();
    CalibrationParams off = cal;
    off.amplitudeError = 0.1;
    EXPECT_NEAR(calibratedAmplitude(off, kPi),
                calibratedAmplitude(cal, kPi) * 1.1, 1e-12);
}

TEST(Calibration, StandardLutDrivesCalibratedRotations)
{
    // Render the LUT, play X90 through a chip, and verify the
    // rotation angle end to end (calibration -> DAC -> physics).
    qsim::TransmonParams qp = qsim::paperQubitParams();
    qp.t1Ns = 1e9;
    qp.t2Ns = 1e9;
    WaveMemory wm;
    CalibrationParams cal;
    cal.rabiRadPerAmpNs = qp.rabiRadPerAmpNs;
    buildStandardLut(wm, cal);

    qsim::TransmonChip chip({qp}, 1);
    const auto &stored = wm.lookup(u::X90);
    signal::DrivePulse pulse;
    pulse.t0Ns = 0;
    pulse.i = signal::Waveform(stored.i, stored.rateHz);
    pulse.q = signal::Waveform(stored.q, stored.rateHz);
    pulse.ssbHz = cal.ssbHz;
    pulse.carrierHz = qp.freqHz - cal.ssbHz;
    chip.applyDrive(0, pulse);
    EXPECT_NEAR(chip.probabilityOne(0), 0.5, 2e-3);
}

TEST(Calibration, RequiresRabiGain)
{
    setLogQuiet(true);
    CalibrationParams cal; // gain left at 0
    EXPECT_THROW(calibratedAmplitude(cal, kPi), quma::FatalError);
    setLogQuiet(false);
}

} // namespace
} // namespace quma::awg
