/**
 * @file
 * Unit tests for OpenQL-lite: kernel construction, lowering to both
 * QIS and raw QuMIS levels, loop generation and the assembly
 * round trip.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "compiler/codegen.hh"
#include "isa/assembler.hh"

namespace quma::compiler {
namespace {

using isa::Instruction;
using isa::Opcode;

TEST(Kernel, CollectsOperations)
{
    Kernel k("demo");
    k.gate("X180", 0).wait(4).measure(0, 7).init();
    ASSERT_EQ(k.operations().size(), 4u);
    EXPECT_EQ(k.operations()[0].kind, Operation::Kind::Gate);
    EXPECT_EQ(k.operations()[0].mask, 0x1u);
    EXPECT_EQ(k.operations()[1].cycles, 4u);
    EXPECT_EQ(k.operations()[2].reg, 7);
    EXPECT_EQ(k.operations()[3].kind, Operation::Kind::WaitReg);
}

TEST(Kernel, GateOnMask)
{
    Kernel k("demo");
    k.gateOn("Y90", 0b101);
    EXPECT_EQ(k.operations()[0].mask, 0b101u);
}

TEST(Kernel, RejectsBadInput)
{
    setLogQuiet(true);
    Kernel k("demo");
    EXPECT_THROW(k.gateOn("X180", 0), FatalError);
    EXPECT_THROW(k.cnot(1, 1), FatalError);
    EXPECT_THROW(k.wait(0), FatalError);
    setLogQuiet(false);
}

TEST(Codegen, SingleRoundHasNoLoop)
{
    QuantumProgram prog("p", 1, 1);
    prog.newKernel("k").gate("X180", 0).measure(0, 7);
    isa::Program out = prog.compile();
    // mov init; Apply; Measure; epilogue Wait; halt.
    ASSERT_EQ(out.size(), 5u);
    EXPECT_EQ(out.at(0).op, Opcode::Mov);
    EXPECT_EQ(out.at(1).op, Opcode::Apply);
    EXPECT_EQ(out.at(2).op, Opcode::MeasureQ);
    EXPECT_EQ(out.at(3).op, Opcode::QWait);
    EXPECT_EQ(out.at(4).op, Opcode::Halt);
}

TEST(Codegen, LoopStructureMatchesAlgorithm3)
{
    QuantumProgram prog("p", 1, 25600);
    prog.newKernel("k").init().gate("I", 0).measure(0, 7);
    isa::Program out = prog.compile();
    // mov counter, mov limit, mov init reg, then the body.
    EXPECT_EQ(out.at(0), Instruction::mov(1, 0));
    EXPECT_EQ(out.at(1), Instruction::mov(2, 25600));
    EXPECT_EQ(out.at(2), Instruction::mov(15, 40000));
    EXPECT_EQ(out.labelTarget("Outer_Loop"), 3u);
    // Tail: addi, bne back to the loop top, halt.
    const auto &bne = out.at(out.size() - 2);
    EXPECT_EQ(bne.op, Opcode::Bne);
    EXPECT_EQ(static_cast<std::size_t>(bne.imm), 3u);
    EXPECT_EQ(out.at(out.size() - 1).op, Opcode::Halt);
}

TEST(Codegen, QisVsQumisLevels)
{
    QuantumProgram prog("p", 1, 1);
    prog.newKernel("k").gate("X180", 0).measure(0, 7);

    CompilerOptions qis;
    qis.useQisGates = true;
    isa::Program high = prog.compile(qis);
    bool sawApply = false;
    for (const auto &inst : high.all())
        sawApply |= inst.op == Opcode::Apply;
    EXPECT_TRUE(sawApply);

    CompilerOptions raw;
    raw.useQisGates = false;
    isa::Program low = prog.compile(raw);
    for (const auto &inst : low.all()) {
        EXPECT_NE(inst.op, Opcode::Apply);
        EXPECT_NE(inst.op, Opcode::MeasureQ);
    }
    // Pulse + Wait + MPG + MD present instead.
    bool sawPulse = false, sawMpg = false, sawMd = false;
    for (const auto &inst : low.all()) {
        sawPulse |= inst.op == Opcode::Pulse;
        sawMpg |= inst.op == Opcode::Mpg;
        sawMd |= inst.op == Opcode::Md;
    }
    EXPECT_TRUE(sawPulse && sawMpg && sawMd);
}

TEST(Codegen, CnotAndWaitReg)
{
    QuantumProgram prog("p", 3, 1);
    prog.newKernel("k").init(12).cnot(1, 2);
    isa::Program out = prog.compile();
    EXPECT_EQ(out.at(1), Instruction::waitReg(12));
    EXPECT_EQ(out.at(2), Instruction::cnot(1, 2));
}

TEST(Codegen, UnknownGateIsFatal)
{
    setLogQuiet(true);
    QuantumProgram prog("p", 1, 1);
    prog.newKernel("k").gate("WIBBLE", 0);
    EXPECT_THROW(prog.compile(), FatalError);
    setLogQuiet(false);
}

TEST(Codegen, AssemblyRoundTrip)
{
    QuantumProgram prog("roundtrip", 2, 4);
    prog.newKernel("k")
        .init()
        .gate("X90", 0)
        .gateOn("Y180", 0b11)
        .cnot(0, 1)
        .measure(0, 7)
        .measure(1, 8);
    isa::Program direct = prog.compile();
    std::string text = prog.compileToAssembly();
    isa::Assembler as;
    isa::Program reassembled = as.assemble(text);
    ASSERT_EQ(reassembled.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(reassembled.at(i), direct.at(i)) << "at " << i;
}

TEST(Codegen, OptionsControlRegistersAndTiming)
{
    CompilerOptions opt;
    opt.initReg = 10;
    opt.initCycles = 1234;
    opt.loopCounterReg = 20;
    opt.loopLimitReg = 21;
    opt.epilogueCycles = 99;
    QuantumProgram prog("p", 1, 2);
    prog.newKernel("k").init(10);
    isa::Program out = prog.compile(opt);
    EXPECT_EQ(out.at(0), Instruction::mov(20, 0));
    EXPECT_EQ(out.at(1), Instruction::mov(21, 2));
    EXPECT_EQ(out.at(2), Instruction::mov(10, 1234));
    EXPECT_EQ(out.at(3), Instruction::waitReg(10));
    EXPECT_EQ(out.at(4), Instruction::wait(99));
}

TEST(QuantumProgram, RejectsBadConstruction)
{
    setLogQuiet(true);
    EXPECT_THROW(QuantumProgram("p", 0, 1), FatalError);
    EXPECT_THROW(QuantumProgram("p", 1, 0), FatalError);
    setLogQuiet(false);
}

} // namespace
} // namespace quma::compiler
