/**
 * @file
 * Unit tests for the Q control store (QIS -> QuMIS expansion,
 * including the paper's Algorithm 2 CNOT microprogram) and the u-op
 * sequence tables (including the paper's SeqZ example), with unitary
 * verification that every emulation sequence implements its gate.
 */

#include <gtest/gtest.h>

#include <numbers>

#include "common/logging.hh"
#include "isa/nametable.hh"
#include "microcode/controlstore.hh"
#include "microcode/seqtable.hh"
#include "qsim/gates.hh"

namespace quma::microcode {
namespace {

namespace u = isa::uops;
constexpr double kPi = std::numbers::pi;

// ------------------------------------------------------------ controlstore

TEST(ControlStore, PrimitiveApplyIsPulsePlusWait)
{
    auto cs = QControlStore::standard();
    auto seq = cs.expandApply(u::X180, 0x4);
    ASSERT_EQ(seq.size(), 2u);
    EXPECT_EQ(seq[0], isa::Instruction::pulse1(0x4, u::X180));
    EXPECT_EQ(seq[1], isa::Instruction::wait(4));
}

TEST(ControlStore, ApplyBindsMask)
{
    auto cs = QControlStore::standard();
    auto seq = cs.expandApply(u::Y90, 0x3);
    EXPECT_EQ(seq[0].slots[0].mask, 0x3u);
}

TEST(ControlStore, CnotMatchesAlgorithm2)
{
    // Paper Algorithm 2:
    //   Pulse {qt}, Ym90 / Wait 4 / Pulse {qt, qc}, CZ / Wait 8 /
    //   Pulse {qt}, Y90 / Wait 4
    auto cs = QControlStore::standard();
    auto seq = cs.expandCnot(/*qt=*/1, /*qc=*/2);
    ASSERT_EQ(seq.size(), 6u);
    EXPECT_EQ(seq[0], isa::Instruction::pulse1(0x2, u::Ym90));
    EXPECT_EQ(seq[1], isa::Instruction::wait(4));
    EXPECT_EQ(seq[2], isa::Instruction::pulse1(0x6, u::Cz));
    EXPECT_EQ(seq[3], isa::Instruction::wait(8));
    EXPECT_EQ(seq[4], isa::Instruction::pulse1(0x2, u::Y90));
    EXPECT_EQ(seq[5], isa::Instruction::wait(4));
}

TEST(ControlStore, MeasureExpandsToMpgMd)
{
    auto cs = QControlStore::standard(4, 300);
    auto seq = cs.expandMeasure(0x4, 7);
    ASSERT_EQ(seq.size(), 2u);
    EXPECT_EQ(seq[0], isa::Instruction::mpg(0x4, 300));
    EXPECT_EQ(seq[1], isa::Instruction::md(0x4, 7));
}

TEST(ControlStore, MeasurementDurationConfigurable)
{
    auto cs = QControlStore::standard(4, 120);
    EXPECT_EQ(cs.expandMeasure(0x1, 0)[0].imm, 120);
}

TEST(ControlStore, UnknownGateIsFatal)
{
    setLogQuiet(true);
    auto cs = QControlStore::standard();
    EXPECT_THROW(cs.expandApply(200, 0x1), quma::FatalError);
    setLogQuiet(false);
}

TEST(ControlStore, CustomMicroprogramUpload)
{
    // The Wilkes flexibility argument: redefine a gate without
    // touching hardware. Make "H" two pulses.
    QControlStore cs = QControlStore::standard();
    Microprogram p;
    p.name = "H-custom";
    p.body.push_back(MicroStep::pulse(QubitRole::All, u::Y90));
    p.body.push_back(MicroStep::wait(4));
    p.body.push_back(MicroStep::pulse(QubitRole::All, u::X180));
    p.body.push_back(MicroStep::wait(4));
    cs.define(u::H, std::move(p));
    auto seq = cs.expandApply(u::H, 0x1);
    ASSERT_EQ(seq.size(), 4u);
    EXPECT_EQ(seq[0].slots[0].uop, u::Y90);
    EXPECT_EQ(seq[2].slots[0].uop, u::X180);
}

TEST(ControlStore, HorizontalMicroStep)
{
    QControlStore cs;
    Microprogram p;
    p.name = "parallel";
    p.body.push_back(MicroStep::pulseMulti(
        {{QubitRole::All, u::X180}, {QubitRole::All, u::Y90}}));
    cs.define(42, std::move(p));
    auto seq = cs.expandApply(42, 0x5);
    ASSERT_EQ(seq.size(), 1u);
    ASSERT_EQ(seq[0].slots.size(), 2u);
    EXPECT_EQ(seq[0].slots[0].mask, 0x5u);
    EXPECT_EQ(seq[0].slots[1].uop, u::Y90);
}

// --------------------------------------------------------------- seqtable

TEST(SeqTable, PrimitivesPassThrough)
{
    auto t = UopSequenceTable::standard();
    for (std::uint8_t uop : {u::I, u::X180, u::X90, u::Xm90, u::Y180,
                             u::Y90, u::Ym90}) {
        const auto &seq = t.sequenceFor(uop);
        ASSERT_EQ(seq.size(), 1u);
        EXPECT_EQ(seq[0].delta, 0u);
        EXPECT_EQ(seq[0].codeword, uop);
    }
}

TEST(SeqTable, SeqZMatchesPaper)
{
    // Paper §5.3.2: SeqZ = ([0, 1]; [4, 4]).
    auto t = UopSequenceTable::standard();
    const auto &seq = t.sequenceFor(u::Z180);
    ASSERT_EQ(seq.size(), 2u);
    EXPECT_EQ(seq[0], (SeqEntry{0, 1}));
    EXPECT_EQ(seq[1], (SeqEntry{4, 4}));
    EXPECT_EQ(t.spanOf(u::Z180), 4u);
}

TEST(SeqTable, RejectsMalformedSequences)
{
    setLogQuiet(true);
    UopSequenceTable t;
    EXPECT_THROW(t.define(1, {}), quma::FatalError);
    EXPECT_THROW(t.define(1, {{4, 0}}), quma::FatalError);
    EXPECT_THROW(t.sequenceFor(99), quma::FatalError);
    setLogQuiet(false);
}

// Unitary verification: playing a sequence's codewords in temporal
// order must implement the intended gate (up to global phase).
struct EmulationCase
{
    const char *name;
    std::uint8_t uop;
    qsim::Mat2 expected;
};

class SeqUnitaryTest : public ::testing::TestWithParam<EmulationCase>
{};

TEST_P(SeqUnitaryTest, SequenceImplementsGate)
{
    const auto &c = GetParam();
    auto table = UopSequenceTable::standard();

    // Map Table 1 codewords to their pulse unitaries.
    auto cwUnitary = [](Codeword cw) -> qsim::Mat2 {
        switch (cw) {
          case u::I:
            return qsim::gates::identity();
          case u::X180:
            return qsim::gates::rx(kPi);
          case u::X90:
            return qsim::gates::rx(kPi / 2);
          case u::Xm90:
            return qsim::gates::rx(-kPi / 2);
          case u::Y180:
            return qsim::gates::ry(kPi);
          case u::Y90:
            return qsim::gates::ry(kPi / 2);
          case u::Ym90:
            return qsim::gates::ry(-kPi / 2);
          default:
            return qsim::gates::identity();
        }
    };

    qsim::Mat2 total = qsim::gates::identity();
    for (const auto &entry : table.sequenceFor(c.uop))
        total = qsim::matmul(cwUnitary(entry.codeword), total);
    EXPECT_TRUE(qsim::equalUpToPhase(total, c.expected, 1e-9))
        << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Emulations, SeqUnitaryTest,
    ::testing::Values(
        EmulationCase{"Z180", u::Z180, qsim::gates::pauliZ()},
        EmulationCase{"Z90", u::Z90, qsim::gates::rz(kPi / 2)},
        EmulationCase{"Zm90", u::Zm90, qsim::gates::rz(-kPi / 2)},
        EmulationCase{"H", u::H, qsim::gates::hadamard()},
        EmulationCase{"X180", u::X180, qsim::gates::pauliX()},
        EmulationCase{"Y90", u::Y90, qsim::gates::ry(kPi / 2)}),
    [](const auto &info) { return info.param.name; });

} // namespace
} // namespace quma::microcode
